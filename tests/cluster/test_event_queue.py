"""Event-queue ordering invariants (hypothesis-verified)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.event import EventQueue


def test_orders_by_time():
    q = EventQueue()
    order = []
    q.push(3.0, lambda: order.append("c"))
    q.push(1.0, lambda: order.append("a"))
    q.push(2.0, lambda: order.append("b"))
    while q:
        q.pop().action()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    q = EventQueue()
    order = []
    for name in "abcde":
        q.push(1.0, lambda n=name: order.append(n))
    while q:
        q.pop().action()
    assert order == list("abcde")


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1.0, lambda: None)


def test_peek_time():
    q = EventQueue()
    assert q.peek_time() is None
    q.push(5.0, lambda: None)
    q.push(2.0, lambda: None)
    assert q.peek_time() == 2.0


def test_len_and_bool():
    q = EventQueue()
    assert not q and len(q) == 0
    q.push(1.0, lambda: None)
    assert q and len(q) == 1


@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_pop_order_is_sorted_stable(times):
    """Pops are sorted by time; equal times preserve insertion order."""
    q = EventQueue()
    for i, t in enumerate(times):
        q.push(t, lambda: None, label=str(i))
    popped = []
    while q:
        popped.append(q.pop())
    assert all(
        (a.time, a.seq) <= (b.time, b.seq) for a, b in zip(popped, popped[1:])
    )
    assert sorted(e.time for e in popped) == [e.time for e in popped]
