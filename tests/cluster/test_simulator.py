"""Virtual-time simulator semantics."""

import pytest

from repro.cluster.simulator import Simulator


def test_clock_advances_monotonically():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(sim.now))
    sim.schedule(1.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.0, 2.0]
    assert sim.now == 2.0


def test_nested_scheduling():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.schedule(0.5, lambda: seen.append(("second", sim.now)))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [("first", 1.0), ("second", 1.5)]


def test_until_stops_before_future_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append(1))
    sim.schedule(5.0, lambda: seen.append(5))
    sim.run(until=2.0)
    assert seen == [1]
    assert sim.now == 2.0


def test_stop_requests_exit():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
    sim.schedule(2.0, lambda: seen.append(2))
    sim.run()
    assert seen == [1]


def test_stop_when_predicate():
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda t=t: seen.append(t))
    sim.run(stop_when=lambda: len(seen) >= 2)
    assert seen == [1.0, 2.0]


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(RuntimeError, match="max_events"):
        sim.run(max_events=100)


def test_schedule_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_processed_events_counter():
    sim = Simulator()
    for t in range(5):
        sim.schedule(float(t), lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_zero_delay_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.0]
