"""Compute/network models: distributions, heterogeneity, stragglers, trace."""

import numpy as np
import pytest

from repro.cluster.network import LinkModel, NetworkModel
from repro.cluster.node import ComputeModel, StragglerModel
from repro.cluster.trace import ClusterTrace


class TestLinkModel:
    def test_deterministic_without_jitter(self):
        link = LinkModel(base_latency=0.01, bandwidth=1e6, jitter_sigma=0.0)
        rng = np.random.default_rng(0)
        assert link.transfer_time(1e6, rng) == pytest.approx(0.01 + 1.0)

    def test_jitter_varies(self):
        link = LinkModel(base_latency=0.01, bandwidth=1e9, jitter_sigma=0.5)
        rng = np.random.default_rng(0)
        times = {link.transfer_time(0, rng) for _ in range(10)}
        assert len(times) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(base_latency=-1)
        with pytest.raises(ValueError):
            LinkModel(bandwidth=0)
        link = LinkModel()
        with pytest.raises(ValueError):
            link.transfer_time(-5, np.random.default_rng(0))


class TestNetworkModel:
    def test_per_worker_heterogeneity(self):
        net = NetworkModel(8, LinkModel(base_latency=0.01), heterogeneity=0.5, seed=0)
        latencies = {net.link(w).base_latency for w in range(8)}
        assert len(latencies) > 1
        for lat in latencies:
            assert 0.005 <= lat <= 0.015

    def test_homogeneous_by_default(self):
        net = NetworkModel(4, LinkModel(base_latency=0.01), seed=0)
        assert {net.link(w).base_latency for w in range(4)} == {0.01}

    def test_worker_range_check(self):
        net = NetworkModel(2, seed=0)
        with pytest.raises(ValueError):
            net.transfer_time(5, 100)

    def test_deterministic_per_seed(self):
        a = NetworkModel(2, LinkModel(jitter_sigma=0.3), seed=1)
        b = NetworkModel(2, LinkModel(jitter_sigma=0.3), seed=1)
        for _ in range(5):
            assert a.transfer_time(0, 100) == b.transfer_time(0, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(0)
        with pytest.raises(ValueError):
            NetworkModel(2, heterogeneity=1.5)


class TestStraggler:
    def test_disabled_by_default(self):
        s = StragglerModel()
        rng = np.random.default_rng(0)
        assert all(s.factor(rng) == 1.0 for _ in range(20))

    def test_frequency_roughly_matches(self):
        s = StragglerModel(probability=0.3, slowdown=5.0)
        rng = np.random.default_rng(0)
        hits = sum(s.factor(rng) > 1.0 for _ in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerModel(probability=2.0)
        with pytest.raises(ValueError):
            StragglerModel(probability=0.1, slowdown=0.5)


class TestComputeModel:
    def test_mean_duration_scale(self):
        model = ComputeModel(1, mean_batch_time=0.1, heterogeneity=0.0, jitter_sigma=0.0, seed=0)
        assert model.duration(0) == pytest.approx(0.1)
        assert model.duration(0, fraction=0.5) == pytest.approx(0.05)

    def test_heterogeneity_persistent(self):
        model = ComputeModel(8, heterogeneity=0.4, jitter_sigma=0.0, seed=0)
        factors = [model.speed_factor(w) for w in range(8)]
        assert len(set(factors)) > 1
        assert all(0.6 <= f <= 1.4 for f in factors)
        # persistent: duration ratio matches the factor exactly (no jitter)
        d0 = model.duration(0)
        assert d0 == pytest.approx(0.03 * factors[0])

    def test_straggler_injection(self):
        model = ComputeModel(
            1,
            heterogeneity=0.0,
            jitter_sigma=0.0,
            straggler=StragglerModel(probability=1.0, slowdown=4.0),
            seed=0,
        )
        assert model.duration(0) == pytest.approx(0.03 * 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeModel(0)
        with pytest.raises(ValueError):
            ComputeModel(2, mean_batch_time=0)
        model = ComputeModel(2, seed=0)
        with pytest.raises(ValueError):
            model.duration(5)
        with pytest.raises(ValueError):
            model.duration(0, fraction=0)


class TestTrace:
    def test_staleness_stats(self):
        trace = ClusterTrace()
        for i, k in enumerate((0, 2, 4)):
            trace.record(float(i), "update", worker=i % 2, staleness=k)
        trace.record(3.0, "pull", worker=0)
        stats = trace.staleness_stats()
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["max"] == 4
        assert stats["count"] == 3

    def test_empty_stats(self):
        assert ClusterTrace().staleness_stats()["count"] == 0

    def test_finishing_order_and_counts(self):
        trace = ClusterTrace()
        for w in (1, 0, 1):
            trace.record(0.0, "update", worker=w, staleness=0)
        assert trace.finishing_order() == [1, 0, 1]
        assert trace.updates_per_worker() == {1: 2, 0: 1}

    def test_of_kind(self):
        trace = ClusterTrace()
        trace.record(0.0, "pull", worker=0)
        trace.record(1.0, "update", worker=0)
        assert len(trace.of_kind("pull")) == 1
        assert len(trace) == 2
