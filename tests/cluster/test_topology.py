"""Peer topologies: graph structure, round matchings, per-edge links."""

import numpy as np
import pytest

from repro.cluster import (
    BipartiteTopology,
    CompleteTopology,
    LinkModel,
    RingTopology,
    available_topologies,
    make_topology,
)
from repro.cluster.topology import TopologyModel, register_topology


# ---------------------------------------------------------------------- #
# graph structure
# ---------------------------------------------------------------------- #
def test_registry_has_builtin_graphs():
    assert set(available_topologies()) >= {"ring", "bipartite", "complete"}
    for name in ("ring", "bipartite", "complete"):
        assert make_topology(name, 4).name == name


def test_ring_structure():
    topo = RingTopology(5)
    assert topo.neighbors(0) == (1, 4)
    assert topo.neighbors(2) == (1, 3)
    assert all(topo.degree(i) == 2 for i in range(5))
    assert topo.edges() == [(0, 1), (0, 4), (1, 2), (2, 3), (3, 4)]


def test_ring_degenerate_sizes():
    assert RingTopology(1).neighbors(0) == ()
    assert RingTopology(1).edges() == []
    # two workers share ONE edge, not a double edge
    assert RingTopology(2).neighbors(0) == (1,)
    assert RingTopology(2).edges() == [(0, 1)]
    # three workers: the cycle is a triangle
    assert RingTopology(3).neighbors(0) == (1, 2)


def test_bipartite_structure():
    topo = BipartiteTopology(6)
    assert topo.neighbors(0) == (1, 3, 5)
    assert topo.neighbors(3) == (0, 2, 4)
    # every edge crosses the odd-even partition
    assert all((a % 2) != (b % 2) for a, b in topo.edges())
    assert len(topo.edges()) == 9


def test_complete_structure():
    topo = CompleteTopology(4)
    assert topo.neighbors(2) == (0, 1, 3)
    assert len(topo.edges()) == 6
    assert all(topo.degree(i) == 3 for i in range(4))


def test_neighbors_validates_worker_ids():
    with pytest.raises(ValueError, match="out of range"):
        RingTopology(4).neighbors(4)
    with pytest.raises(ValueError, match="num_workers"):
        RingTopology(0)
    with pytest.raises(ValueError, match="heterogeneity"):
        RingTopology(4, heterogeneity=1.0)


def test_self_loop_neighbors_rejected():
    class Loopy(TopologyModel):
        name = "loopy"

        def neighbors(self, worker):
            return (worker,)

    with pytest.raises(ValueError, match="itself"):
        Loopy(2)


def test_register_topology_rejects_duplicates():
    with pytest.raises(Exception):
        register_topology("ring", RingTopology)


# ---------------------------------------------------------------------- #
# gossip scheduling
# ---------------------------------------------------------------------- #
def test_partner_is_always_a_neighbor():
    topo = RingTopology(8)
    rng = np.random.default_rng(3)
    for _ in range(50):
        for m in range(8):
            assert topo.partner(m, rng) in topo.neighbors(m)
    assert RingTopology(1).partner(0, rng) is None


@pytest.mark.parametrize("name", ["ring", "bipartite", "complete"])
@pytest.mark.parametrize("n", [2, 4, 5, 8])
def test_round_pairs_is_a_conflict_free_matching(name, n):
    topo = make_topology(name, n)
    rng = np.random.default_rng(11)
    for round_index in range(20):
        pairs = topo.round_pairs(round_index, rng)
        touched = [w for pair in pairs for w in pair]
        assert len(touched) == len(set(touched))  # nobody in two pairs
        for a, b in pairs:
            assert a < b
            assert b in topo.neighbors(a)
        # maximal: no two unmatched workers are still adjacent
        unmatched = set(range(n)) - set(touched)
        for w in unmatched:
            assert not (set(topo.neighbors(w)) & unmatched)
        # on the all-edges-cross graphs a maximal matching is perfect
        if n % 2 == 0 and name in ("bipartite", "complete"):
            assert len(pairs) == n // 2


def test_round_pairs_deterministic_per_seed():
    def schedule(seed):
        topo = make_topology("ring", 6)
        rng = np.random.default_rng(seed)
        return [topo.round_pairs(r, rng) for r in range(10)]

    assert schedule(5) == schedule(5)
    assert schedule(5) != schedule(6)


# ---------------------------------------------------------------------- #
# per-edge links
# ---------------------------------------------------------------------- #
def test_link_lookup_is_symmetric_and_validated():
    topo = RingTopology(4)
    assert topo.link(0, 1) is topo.link(1, 0)
    with pytest.raises(ValueError, match="not neighbors"):
        topo.link(0, 2)
    with pytest.raises(ValueError, match="not neighbors"):
        topo.transfer_time(0, 2, 1000)


def test_heterogeneity_differentiates_edges_deterministically():
    link = LinkModel(base_latency=0.01, bandwidth=1e6, jitter_sigma=0.0)
    topo = make_topology("ring", 6, link=link, heterogeneity=0.5, seed=42)
    latencies = [topo.link(a, b).base_latency for a, b in topo.edges()]
    assert len(set(latencies)) > 1  # edges are persistently different
    again = make_topology("ring", 6, link=link, heterogeneity=0.5, seed=42)
    assert latencies == [again.link(a, b).base_latency for a, b in again.edges()]
    # all factors within the declared band
    assert all(0.005 <= l <= 0.015 for l in latencies)


def test_transfer_time_positive_and_seeded():
    topo = make_topology("bipartite", 4, seed=9)
    t1 = [topo.transfer_time(0, 1, 10_000) for _ in range(5)]
    topo2 = make_topology("bipartite", 4, seed=9)
    t2 = [topo2.transfer_time(0, 1, 10_000) for _ in range(5)]
    assert t1 == t2
    assert all(t > 0 for t in t1)
