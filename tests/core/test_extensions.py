"""Extensions beyond the paper: SA-ASGD baseline, checkpointing, CLI."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import DistributedTrainer, TrainingConfig
from repro.core.algorithms import StalenessAwareASGDRule, make_update_rule
from repro.core.checkpoint import load_model_from_checkpoint, save_run_checkpoint
from repro.core.metrics import evaluate_model
from repro.core.state import GradientPayload


class TestStalenessAwareASGD:
    def test_scales_by_staleness(self):
        rule = StalenessAwareASGDRule()
        params = np.zeros(2)
        payload = GradientPayload(worker=0, grad=np.array([1.0, 1.0]), pull_version=0)
        rule.apply_gradient(params, payload, lr=1.0, version=3)  # staleness 3
        np.testing.assert_allclose(params, [-0.25, -0.25])  # lr/(1+3)

    def test_zero_staleness_full_step(self):
        rule = StalenessAwareASGDRule()
        params = np.zeros(1)
        payload = GradientPayload(worker=0, grad=np.array([1.0]), pull_version=5)
        rule.apply_gradient(params, payload, lr=1.0, version=5)
        np.testing.assert_allclose(params, [-1.0])

    def test_exponent(self):
        rule = StalenessAwareASGDRule(exponent=2.0)
        params = np.zeros(1)
        payload = GradientPayload(worker=0, grad=np.array([1.0]), pull_version=0)
        rule.apply_gradient(params, payload, lr=1.0, version=1)
        np.testing.assert_allclose(params, [-0.25])  # 1/(1+1)^2
        with pytest.raises(ValueError):
            StalenessAwareASGDRule(exponent=-1)

    def test_factory_and_trainer(self):
        rule = make_update_rule("sa-asgd", num_workers=4, momentum=0.5)
        assert isinstance(rule, StalenessAwareASGDRule)
        cfg = TrainingConfig.tiny(algorithm="sa-asgd", num_workers=2, epochs=2, seed=0)
        result = DistributedTrainer(cfg).run()
        assert result.final_test_error < 0.9


class TestCheckpoint:
    def test_roundtrip_preserves_eval_error(self, tmp_path):
        cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=2, seed=4)
        trainer = DistributedTrainer(cfg)
        result = trainer.run()
        path = str(tmp_path / "model.npz")
        save_run_checkpoint(trainer, path)

        model, meta = load_model_from_checkpoint(cfg, path)
        assert meta["algorithm"] == "asgd"
        assert meta["batches"] == result.total_updates
        train_idx, test_idx = trainer._eval_indices
        err, _ = evaluate_model(
            model, trainer.test_set.inputs[test_idx], trainer.test_set.targets[test_idx]
        )
        assert err == pytest.approx(result.final_test_error, abs=1e-9)

    def test_local_bn_checkpoint(self, tmp_path):
        cfg = TrainingConfig.tiny(algorithm="sgd", num_workers=1, epochs=2, seed=4)
        trainer = DistributedTrainer(cfg)
        trainer.run()
        path = str(tmp_path / "sgd.npz")
        save_run_checkpoint(trainer, path)
        model, meta = load_model_from_checkpoint(cfg, path)
        assert int(meta["bn_layers"]) >= 1


class TestCLI:
    def test_info(self, capsys):
        assert cli_main(["info", "--algorithm", "asgd", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "asgd" in out

    def test_run_writes_json(self, tmp_path, capsys):
        out_path = str(tmp_path / "result.json")
        code = cli_main([
            "run", "--algorithm", "asgd", "--workers", "2",
            "--epochs", "2", "--seed", "0", "--json", out_path,
        ])
        assert code == 0
        with open(out_path) as fh:
            payload = json.load(fh)
        assert payload["algorithm"] == "asgd"
        assert 0.0 <= payload["final_test_error"] <= 1.0
        assert len(payload["curve"]) >= 1

    def test_run_epochs_override_speeds_config(self):
        # config resolution only (no training): epochs propagate
        from repro.cli import _make_config
        import argparse

        ns = argparse.Namespace(
            workers=4, preset="cifar", model=None, epochs=6, seed=1, json=None
        )
        cfg = _make_config(ns, "lc-asgd")
        assert cfg.epochs == 6
        assert cfg.lr_milestones == (3, 4)
