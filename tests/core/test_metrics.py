"""RunResult accessors and model evaluation."""

import numpy as np
import pytest

from repro.core.metrics import CurvePoint, RunResult, degradation, evaluate_model
from repro.nn.mlp import MLP
from repro.tensor import Tensor


def make_result(errors=(0.5, 0.3, 0.2)):
    curve = [
        CurvePoint(epoch=i, time=float(i), train_error=e, train_loss=e, test_error=e, test_loss=e)
        for i, e in enumerate(errors)
    ]
    return RunResult(algorithm="asgd", num_workers=4, bn_mode="async", curve=curve)


def test_final_and_best():
    r = make_result((0.5, 0.2, 0.3))
    assert r.final_test_error == 0.3
    assert r.final_train_error == 0.3
    assert r.best_test_error == 0.2


def test_empty_curve_raises():
    r = RunResult(algorithm="asgd", num_workers=1, bn_mode="async")
    with pytest.raises(ValueError):
        _ = r.final_test_error
    with pytest.raises(ValueError):
        _ = r.best_test_error


def test_series_accessors():
    r = make_result()
    np.testing.assert_array_equal(r.epochs(), [0, 1, 2])
    np.testing.assert_array_equal(r.times(), [0.0, 1.0, 2.0])
    np.testing.assert_array_equal(r.series("test_error"), [0.5, 0.3, 0.2])
    with pytest.raises(ValueError):
        r.series("bogus")


def test_prediction_errors():
    r = make_result()
    assert np.isnan(r.loss_prediction_error())
    assert np.isnan(r.step_prediction_error())
    r.loss_prediction_pairs = [(1.0, 1.5), (2.0, 2.0)]
    assert r.loss_prediction_error() == pytest.approx(0.25)
    r.step_prediction_pairs = [(3, 5), (4, 4)]
    assert r.step_prediction_error() == pytest.approx(1.0)


def test_degradation():
    assert degradation(6.0, 5.0) == pytest.approx(20.0)
    assert degradation(4.5, 5.0) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        degradation(1.0, 0.0)


def test_evaluate_model_perfect_classifier(rng):
    """A model whose logits equal the one-hot labels scores zero error."""

    class Oracle:
        training = False

        def __call__(self, x):
            return Tensor(np.eye(3)[targets_slice[0]].astype(np.float32) * 10)

        def eval(self):
            return self

        def train(self, mode=True):
            return self

    inputs = rng.standard_normal((6, 4)).astype(np.float32)
    targets = np.array([0, 1, 2, 0, 1, 2])
    targets_slice = [targets]
    err, loss = evaluate_model(Oracle(), inputs, targets, batch_size=6)
    assert err == 0.0
    assert loss < 0.01


def test_evaluate_model_batching(rng):
    model = MLP((4, 8, 3), batch_norm=False, rng=np.random.default_rng(0))
    inputs = rng.standard_normal((10, 4)).astype(np.float32)
    targets = rng.integers(0, 3, 10)
    err_full, loss_full = evaluate_model(model, inputs, targets, batch_size=10)
    err_batched, loss_batched = evaluate_model(model, inputs, targets, batch_size=3)
    assert err_full == pytest.approx(err_batched)
    assert loss_full == pytest.approx(loss_batched, rel=1e-5)


def test_evaluate_model_restores_training_mode(rng):
    model = MLP((4, 8, 3), batch_norm=True, rng=np.random.default_rng(0))
    model.train()
    # must run a training pass first so BN has stats; eval uses running stats
    model(Tensor(rng.standard_normal((8, 4)).astype(np.float32)))
    evaluate_model(model, rng.standard_normal((4, 4)).astype(np.float32), np.zeros(4, dtype=int))
    assert model.training


def test_evaluate_model_empty_raises(rng):
    model = MLP((4, 8, 3), batch_norm=False, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        evaluate_model(model, np.zeros((0, 4), dtype=np.float32), np.zeros(0, dtype=int))
