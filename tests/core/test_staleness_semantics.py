"""Cross-cutting integration tests: the simulator's staleness semantics.

These pin down the exact quantity the whole paper is about: ``k_m`` is the
number of *other* workers' updates applied between a worker's pull and its
gradient landing.
"""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainingConfig


def run_tiny(algorithm, workers, seed=0, **kw):
    cfg = TrainingConfig.tiny(algorithm=algorithm, num_workers=workers, epochs=2, seed=seed, **kw)
    trainer = DistributedTrainer(cfg)
    return trainer, trainer.run()


def test_staleness_bounded_by_inflight_work():
    """Without stragglers, staleness cannot wildly exceed the worker count:
    each worker has at most ~2 gradients in flight per cycle."""
    trainer, result = run_tiny("asgd", 4)
    assert result.staleness["max"] <= 4 * 4


def test_update_count_matches_batches():
    trainer, result = run_tiny("asgd", 3)
    updates = trainer.trace.updates_per_worker()
    assert sum(updates.values()) == result.total_updates


def test_workers_contribute_roughly_evenly():
    """Homogeneous workers should land similar numbers of gradients."""
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=4, epochs=4, seed=0)
    cfg.cluster.compute_heterogeneity = 0.0
    cfg.cluster.straggler_probability = 0.0
    trainer = DistributedTrainer(cfg)
    trainer.run()
    counts = list(trainer.trace.updates_per_worker().values())
    assert max(counts) - min(counts) <= max(4, 0.3 * np.mean(counts))


def test_slow_worker_contributes_less_and_staler():
    """A persistently slow worker lands fewer, staler gradients."""
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=4, epochs=4, seed=0)
    cfg.cluster.compute_heterogeneity = 0.6
    trainer = DistributedTrainer(cfg)
    trainer.run()
    factors = {w: trainer.compute.speed_factor(w) for w in range(4)}
    slowest = max(factors, key=factors.get)
    fastest = min(factors, key=factors.get)
    counts = trainer.trace.updates_per_worker()
    assert counts[fastest] >= counts[slowest]


def test_ssgd_round_structure():
    """SSGD's version advances exactly once per M gradients."""
    trainer, result = run_tiny("ssgd", 4)
    assert trainer.server.version == result.total_updates // 4


def test_lc_round_trip_increases_staleness_slightly():
    """LC-ASGD's compensation round trip delays the gradient push, so its
    mean staleness is at least ASGD's under identical conditions."""
    _, lc = run_tiny("lc-asgd", 4, seed=2)
    _, asgd = run_tiny("asgd", 4, seed=2)
    assert lc.staleness["mean"] >= asgd.staleness["mean"] - 0.5


def test_pull_versions_tracked_per_worker():
    trainer, _ = run_tiny("asgd", 3)
    assert set(trainer.server.pull_versions) == {0, 1, 2}


def test_iter_log_matches_paper_semantics():
    """Algorithm 2's `iter` list records the worker order of state pushes."""
    trainer, result = run_tiny("lc-asgd", 3)
    # every applied gradient was preceded by a state push; states whose
    # gradients were still in flight when the run stopped may add a few more
    assert len(trainer.server.iter_log) >= result.total_updates
    assert len(trainer.server.iter_log) <= result.total_updates + 2 * 3
    assert set(trainer.server.iter_log) == {0, 1, 2}


def test_heavier_model_bytes_slow_transfer():
    """Link transfer time scales with the parameter count."""
    cfg_small = TrainingConfig.tiny(algorithm="asgd", num_workers=2, seed=0)
    cfg_big = TrainingConfig.tiny(
        algorithm="asgd",
        num_workers=2,
        seed=0,
        model_kwargs={"hidden": (256, 256), "batch_norm": True},
    )
    t_small = DistributedTrainer(cfg_small)
    t_big = DistributedTrainer(cfg_big)
    assert t_big.model_bytes > t_small.model_bytes
