"""Message payload dataclasses (worker <-> server wire format)."""

import numpy as np
import pytest

from repro.core.state import CompensationReply, GradientPayload, WorkerState


class TestWorkerState:
    def test_valid_construction(self):
        state = WorkerState(worker=3, loss=1.5, t_comm=0.01, t_comp=0.02, pull_version=7)
        assert state.worker == 3
        assert state.bn_stats == []

    def test_rejects_nan_and_inf_loss(self):
        with pytest.raises(ValueError):
            WorkerState(worker=0, loss=float("nan"))
        with pytest.raises(ValueError):
            WorkerState(worker=0, loss=float("inf"))


class TestGradientPayload:
    def test_grad_coerced_to_float64(self):
        payload = GradientPayload(worker=0, grad=np.ones(4, dtype=np.float32), pull_version=0)
        assert payload.grad.dtype == np.float64

    def test_nbytes_defaults_to_wire_format(self):
        payload = GradientPayload(worker=0, grad=np.ones(100), pull_version=0)
        assert payload.nbytes == 400  # float32 on the wire

    def test_explicit_nbytes_kept(self):
        payload = GradientPayload(worker=0, grad=np.ones(10), pull_version=0, nbytes=999)
        assert payload.nbytes == 999


class TestCompensationReply:
    def test_fields(self):
        reply = CompensationReply(worker=1, l_delay=3.5, predicted_step=4, sensitivity=0.2)
        assert reply.l_delay == 3.5
        assert reply.sensitivity == 0.2

    def test_sensitivity_defaults_zero(self):
        reply = CompensationReply(worker=1, l_delay=1.0, predicted_step=2)
        assert reply.sensitivity == 0.0
