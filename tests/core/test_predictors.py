"""Loss and step predictors: online learning, forecasting, baselines."""

import numpy as np
import pytest

from repro.core.predictors import (
    EMALossPredictor,
    EMAStepPredictor,
    LSTMLossPredictor,
    LSTMStepPredictor,
    LastValueLossPredictor,
    LastValueStepPredictor,
    LinearTrendLossPredictor,
    make_loss_predictor,
    make_step_predictor,
)
from repro.data.synthetic import make_regression_series


class TestLSTMLossPredictor:
    def make(self, **kw):
        defaults = dict(hidden_size=8, window=6, lr=0.1, seed=0)
        defaults.update(kw)
        return LSTMLossPredictor(**defaults)

    def test_cold_start_flat_forecast(self):
        p = self.make()
        assert p.predict_next() is None
        assert p.predict_delay(2.0, 3) == pytest.approx(6.0)
        assert p.predict_delay(2.0, 0) == 0.0

    def test_tracks_decaying_series(self):
        """After online training on a decaying loss the one-step forecast
        must beat the trivial last-value predictor."""
        series = make_regression_series(200, kind="decay", noise=0.005, seed=1)
        p = self.make()
        lstm_errs, naive_errs = [], []
        prev = series[0]
        for value in series:
            forecast = p.predict_next()
            if forecast is not None and len(lstm_errs) < 150:
                lstm_errs.append(abs(forecast - value))
                naive_errs.append(abs(prev - value))
            p.observe(value)
            prev = value
        # compare on the tail, after warm-up
        assert np.mean(lstm_errs[30:]) < 3 * np.mean(naive_errs[30:]) + 0.05

    def test_predict_delay_sums_k_values(self):
        p = self.make()
        for v in np.linspace(3.0, 2.0, 30):
            p.observe(v)
        d1 = p.predict_delay(2.0, 1)
        d5 = p.predict_delay(2.0, 5)
        assert d5 > d1  # summing more steps grows the total
        assert d5 < 5 * 3.5  # but stays near the loss scale

    def test_rollout_cap_extrapolates(self):
        p = self.make(rollout_cap=4)
        for v in np.linspace(3.0, 2.0, 30):
            p.observe(v)
        d = p.predict_delay(2.0, 100)
        assert np.isfinite(d)
        assert d == pytest.approx(p.predict_delay(2.0, 100))  # deterministic

    def test_delay_sensitivity_finite(self):
        p = self.make()
        for v in np.linspace(3.0, 2.0, 20):
            p.observe(v)
        s = p.delay_sensitivity(2.0, 3)
        assert np.isfinite(s)

    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMLossPredictor(hidden_size=0)
        with pytest.raises(ValueError):
            LSTMLossPredictor(window=1)
        with pytest.raises(ValueError):
            LSTMLossPredictor(train_every=0)


class TestLSTMStepPredictor:
    def make(self, **kw):
        defaults = dict(hidden_size=8, window=4, max_step=64, lr=0.1, seed=0)
        defaults.update(kw)
        return LSTMStepPredictor(**defaults)

    def test_cold_start(self):
        p = self.make()
        assert p.predict(0, 0.1, 0.2) == 0

    def test_learns_constant_staleness(self):
        p = self.make()
        for _ in range(60):
            p.observe(0, 7.0, 0.01, 0.02)
        assert abs(p.predict(0, 0.01, 0.02) - 7) <= 2

    def test_per_worker_histories(self):
        p = self.make()
        for _ in range(40):
            p.observe(0, 2.0, 0.01, 0.02)
            p.observe(1, 12.0, 0.05, 0.08)
        fast = p.predict(0, 0.01, 0.02)
        slow = p.predict(1, 0.05, 0.08)
        assert slow > fast

    def test_output_clamped(self):
        p = self.make(max_step=10)
        for _ in range(30):
            p.observe(0, 500.0, 0.01, 0.02)
        assert 0 <= p.predict(0, 0.01, 0.02) <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            LSTMStepPredictor(hidden_size=0)
        with pytest.raises(ValueError):
            LSTMStepPredictor(train_every=0)


class TestBaselines:
    def test_last_value_loss(self):
        p = LastValueLossPredictor()
        assert p.predict_next() is None
        p.observe(3.0)
        assert p.predict_next() == 3.0
        assert p.predict_delay(2.0, 4) == 8.0

    def test_ema_loss(self):
        p = EMALossPredictor(decay=0.5)
        p.observe(4.0)
        p.observe(2.0)
        assert p.predict_next() == pytest.approx(3.0)
        assert p.predict_delay(2.0, 2) == pytest.approx((0.5 * 3.0 + 0.5 * 2.0) * 2)
        with pytest.raises(ValueError):
            EMALossPredictor(decay=0.0)

    def test_linear_trend_extrapolates(self):
        p = LinearTrendLossPredictor(window=8)
        for v in np.linspace(10.0, 3.0, 8):
            p.observe(v)
        nxt = p.predict_next()
        assert nxt < 3.0  # continues the downward trend
        assert p.predict_delay(3.0, 3) >= 0.0  # clamped at zero

    def test_linear_trend_cold(self):
        p = LinearTrendLossPredictor()
        assert p.predict_next() is None
        p.observe(1.0)
        assert p.predict_delay(1.0, 2) == 2.0
        with pytest.raises(ValueError):
            LinearTrendLossPredictor(window=2)

    def test_last_value_step(self):
        p = LastValueStepPredictor()
        assert p.predict(0, 0, 0) == 0
        p.observe(0, 5, 0.1, 0.1)
        assert p.predict(0, 0, 0) == 5

    def test_ema_step(self):
        p = EMAStepPredictor(decay=0.5)
        p.observe(1, 4, 0, 0)
        p.observe(1, 8, 0, 0)
        assert p.predict(1, 0, 0) == 6
        with pytest.raises(ValueError):
            EMAStepPredictor(decay=1.5)


class TestFactories:
    @pytest.mark.parametrize("variant", ["lstm", "ema", "last", "linear"])
    def test_loss_factory(self, variant):
        kwargs = {"hidden_size": 8, "window": 4, "seed": 0} if variant == "lstm" else {}
        p = make_loss_predictor(variant, **kwargs)
        assert p.name == variant

    @pytest.mark.parametrize("variant", ["lstm", "ema", "last"])
    def test_step_factory(self, variant):
        kwargs = {"hidden_size": 8, "window": 4, "seed": 0} if variant == "lstm" else {}
        p = make_step_predictor(variant, **kwargs)
        assert p.name == variant

    def test_unknown_variants(self):
        with pytest.raises(ValueError):
            make_loss_predictor("bogus")
        with pytest.raises(ValueError):
            make_step_predictor("bogus")
