"""TrainingConfig validation and presets."""

import pytest

from repro.core.config import ClusterConfig, PredictorConfig, TrainingConfig


def test_defaults_valid():
    cfg = TrainingConfig()
    assert cfg.algorithm == "lc-asgd"


def test_algorithm_validation():
    with pytest.raises(ValueError, match="algorithm"):
        TrainingConfig(algorithm="bogus")


def test_sgd_normalizes_to_single_worker():
    # the rule lives in __post_init__ alone; callers no longer repeat it
    assert TrainingConfig(algorithm="sgd", num_workers=4).num_workers == 1
    assert TrainingConfig(algorithm="sgd", num_workers=1).num_workers == 1
    assert TrainingConfig.tiny(algorithm="sgd", num_workers=8).num_workers == 1


def test_to_dict_is_json_ready():
    import json

    payload = TrainingConfig.tiny().to_dict()
    assert payload["predictor"]["loss_hidden"] == 8
    assert payload["cluster"]["mean_batch_time"] > 0
    assert payload["lr_milestones"] == []  # tuple -> list
    round_trip = json.loads(json.dumps(payload, sort_keys=True))
    assert round_trip == json.loads(json.dumps(payload, sort_keys=True))


def test_from_dict_inverts_to_dict():
    import json

    for factory in (TrainingConfig.tiny, TrainingConfig.spirals, TrainingConfig.small_cifar):
        cfg = factory(algorithm="lc-asgd", num_workers=3, seed=11)
        # through a real JSON round trip, as the proc backend ships it;
        # to_dict equality is the contract that keeps spec keys stable
        # (free-form model_kwargs tuples legitimately come back as lists)
        rebuilt = TrainingConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert rebuilt.to_dict() == cfg.to_dict()
        assert rebuilt.lr_milestones == cfg.lr_milestones  # tuple restored
        assert rebuilt.predictor == cfg.predictor
        assert rebuilt.cluster == cfg.cluster


def test_from_dict_rejects_unknown_fields():
    payload = TrainingConfig.tiny().to_dict()
    payload["warp_factor"] = 9
    with pytest.raises(ValueError, match="warp_factor"):
        TrainingConfig.from_dict(payload)


def test_spirals_preset_constructs():
    cfg = TrainingConfig.spirals(algorithm="asgd", num_workers=2)
    assert cfg.dataset == "spirals"
    assert cfg.model == "mlp"


def test_bn_mode_validation():
    with pytest.raises(ValueError, match="bn_mode"):
        TrainingConfig(bn_mode="bogus")
    with pytest.raises(ValueError, match="bn_decay"):
        TrainingConfig(bn_decay=0.0)


def test_compensation_validation():
    with pytest.raises(ValueError, match="compensation"):
        TrainingConfig(compensation="bogus")
    with pytest.raises(ValueError, match="lc_lambda"):
        TrainingConfig(lc_lambda=-1)


def test_numeric_validation():
    with pytest.raises(ValueError):
        TrainingConfig(num_workers=0)
    with pytest.raises(ValueError):
        TrainingConfig(batch_size=0)
    with pytest.raises(ValueError):
        TrainingConfig(epochs=0)


def test_predictor_config_validation():
    with pytest.raises(ValueError):
        PredictorConfig(loss_variant="bogus")
    with pytest.raises(ValueError):
        PredictorConfig(step_variant="bogus")
    with pytest.raises(ValueError):
        PredictorConfig(loss_hidden=0)
    with pytest.raises(ValueError):
        PredictorConfig(train_every=0)


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(mean_batch_time=0)
    with pytest.raises(ValueError):
        ClusterConfig(straggler_probability=2.0)


@pytest.mark.parametrize(
    "factory",
    [
        TrainingConfig.small_cifar,
        TrainingConfig.small_imagenet,
        TrainingConfig.paper_cifar10,
        TrainingConfig.paper_imagenet,
        TrainingConfig.tiny,
        TrainingConfig.spirals,
    ],
)
@pytest.mark.parametrize("algorithm", ["sgd", "ssgd", "asgd", "dc-asgd", "lc-asgd"])
def test_presets_construct(factory, algorithm):
    cfg = factory(algorithm=algorithm)
    assert cfg.algorithm == algorithm
    if algorithm == "sgd":
        assert cfg.num_workers == 1
        assert cfg.bn_mode == "local"


def test_paper_cifar_schedule_matches_paper():
    cfg = TrainingConfig.paper_cifar10()
    assert cfg.epochs == 160
    assert cfg.lr_milestones == (80, 120)
    assert cfg.base_lr == pytest.approx(0.3)
    assert cfg.batch_size == 128


def test_paper_imagenet_schedule_matches_paper():
    cfg = TrainingConfig.paper_imagenet()
    assert cfg.epochs == 120
    assert cfg.lr_milestones == (60, 90)
    assert cfg.model == "resnet50"


def test_with_overrides():
    cfg = TrainingConfig.tiny().with_overrides(epochs=9)
    assert cfg.epochs == 9
