"""Failure injection: predictors must stay sane on adversarial inputs.

The paper notes prediction error is worst "at the beginning of the training
process or when the learning rate is tuned" — these tests feed exactly
those regimes (cold starts, constant series, sudden jumps, extreme scales)
and require finite, bounded behaviour rather than accuracy.
"""

import numpy as np
import pytest

from repro.core.predictors import LSTMLossPredictor, LSTMStepPredictor


@pytest.fixture
def loss_pred():
    return LSTMLossPredictor(hidden_size=8, window=6, lr=0.1, seed=0)


@pytest.fixture
def step_pred():
    return LSTMStepPredictor(hidden_size=8, window=4, max_step=32, lr=0.1, seed=0)


class TestLossPredictorRobustness:
    def test_constant_series(self, loss_pred):
        for _ in range(40):
            loss_pred.observe(2.0)
        forecast = loss_pred.predict_next()
        assert np.isfinite(forecast)
        assert abs(forecast - 2.0) < 1.0
        assert np.isfinite(loss_pred.predict_delay(2.0, 10))

    def test_sudden_jump(self, loss_pred):
        for v in np.linspace(3.0, 2.0, 30):
            loss_pred.observe(v)
        loss_pred.observe(50.0)  # divergence spike
        assert np.isfinite(loss_pred.predict_next())
        assert np.isfinite(loss_pred.predict_delay(50.0, 5))

    def test_tiny_scale(self, loss_pred):
        for v in np.linspace(1e-6, 5e-7, 30):
            loss_pred.observe(v)
        d = loss_pred.predict_delay(5e-7, 8)
        assert np.isfinite(d)

    def test_huge_scale(self, loss_pred):
        for v in np.linspace(1e6, 9e5, 30):
            loss_pred.observe(v)
        assert np.isfinite(loss_pred.predict_delay(9e5, 4))

    def test_rising_series(self, loss_pred):
        for v in np.linspace(1.0, 4.0, 40):
            loss_pred.observe(v)
        forecast = loss_pred.predict_next()
        assert np.isfinite(forecast)
        # rising input should not forecast a collapse to zero
        assert forecast > 0.5

    def test_train_every_skips_updates(self):
        p = LSTMLossPredictor(hidden_size=8, window=6, train_every=4, seed=0)
        for v in np.linspace(3.0, 2.0, 20):
            p.observe(v)
        assert np.isfinite(p.predict_delay(2.0, 3))


class TestStepPredictorRobustness:
    def test_constant_then_spike(self, step_pred):
        for _ in range(30):
            step_pred.observe(0, 3.0, 0.01, 0.02)
        step_pred.observe(0, 30.0, 0.5, 0.9)  # straggler event
        k = step_pred.predict(0, 0.01, 0.02)
        assert 0 <= k <= 32

    def test_zero_costs(self, step_pred):
        for _ in range(20):
            step_pred.observe(0, 1.0, 0.0, 0.0)
        assert 0 <= step_pred.predict(0, 0.0, 0.0) <= 32

    def test_unseen_worker_uses_population_mean(self, step_pred):
        for _ in range(20):
            step_pred.observe(0, 10.0, 0.01, 0.02)
        k = step_pred.predict(99, 0.01, 0.02)
        assert 5 <= k <= 15  # falls back near the global mean

    def test_many_workers_bounded_memory(self, step_pred):
        for worker in range(50):
            step_pred.observe(worker, float(worker % 7), 0.01, 0.02)
        assert len(step_pred._histories) == 50
        for history in step_pred._histories.values():
            assert len(history) <= step_pred.window
