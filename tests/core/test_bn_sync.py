"""BN synchronization strategies (Formulas 6-7 and replace-mode)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batchnorm_sync import AsyncBn, ReplaceBn, make_bn_strategy


def payload(mean_value, var_value, sizes=(3, 2)):
    return [(np.full(s, mean_value), np.full(s, var_value)) for s in sizes]


def test_initialized_to_standard():
    """Algorithm 2: E = 0, Var = 1."""
    strat = AsyncBn([3, 2])
    for mean, var in strat.current():
        np.testing.assert_array_equal(mean, 0.0)
        np.testing.assert_array_equal(var, 1.0)


def test_replace_overwrites():
    strat = ReplaceBn([3, 2])
    strat.update(payload(5.0, 2.0))
    strat.update(payload(7.0, 3.0))
    for mean, var in strat.current():
        np.testing.assert_array_equal(mean, 7.0)
        np.testing.assert_array_equal(var, 3.0)


def test_async_ema_formula():
    """E <- (1-d) E + d mean (Formula 6), starting from E=0, Var=1."""
    strat = AsyncBn([2], decay=0.25)
    strat.update(payload(4.0, 5.0, sizes=(2,)))
    mean, var = strat.current()[0]
    np.testing.assert_allclose(mean, 0.75 * 0.0 + 0.25 * 4.0)
    np.testing.assert_allclose(var, 0.75 * 1.0 + 0.25 * 5.0)
    strat.update(payload(4.0, 5.0, sizes=(2,)))
    mean, var = strat.current()[0]
    np.testing.assert_allclose(mean, 0.75 * 1.0 + 0.25 * 4.0)


def test_async_smoother_than_replace():
    """Async-BN's whole point: global stats vary less across noisy workers."""
    rng = np.random.default_rng(0)
    replace, async_bn = ReplaceBn([4]), AsyncBn([4], decay=0.2)
    replace_means, async_means = [], []
    for _ in range(50):
        stats = [(rng.standard_normal(4), np.abs(rng.standard_normal(4)) + 0.5)]
        replace.update(stats)
        async_bn.update(stats)
        replace_means.append(replace.current()[0][0].copy())
        async_means.append(async_bn.current()[0][0].copy())
    assert np.std(async_means, axis=0).mean() < np.std(replace_means, axis=0).mean()


def test_payload_validation():
    strat = AsyncBn([3, 2])
    with pytest.raises(ValueError, match="BN layers"):
        strat.update(payload(0.0, 1.0, sizes=(3,)))
    with pytest.raises(ValueError, match="mean shape"):
        strat.update(payload(0.0, 1.0, sizes=(4, 2)))


def test_current_returns_copies():
    strat = AsyncBn([2])
    snapshot = strat.current()
    snapshot[0][0][:] = 99.0
    np.testing.assert_array_equal(strat.current()[0][0], 0.0)


def test_factory():
    assert make_bn_strategy("local", [2]) is None
    assert isinstance(make_bn_strategy("replace", [2]), ReplaceBn)
    assert isinstance(make_bn_strategy("async", [2], decay=0.3), AsyncBn)
    with pytest.raises(ValueError):
        make_bn_strategy("bogus", [2])
    with pytest.raises(ValueError):
        AsyncBn([2], decay=0.0)


@given(st.floats(0.01, 1.0), st.lists(st.floats(-10, 10), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_async_mean_stays_in_convex_hull(decay, values):
    """EMA output is always inside the convex hull of {init} U observations."""
    strat = AsyncBn([1], decay=decay)
    lo, hi = min([0.0] + values), max([0.0] + values)
    for v in values:
        strat.update([(np.array([v]), np.array([1.0]))])
        mean = strat.current()[0][0][0]
        assert lo - 1e-9 <= mean <= hi + 1e-9
