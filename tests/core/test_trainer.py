"""End-to-end DistributedTrainer integration tests (tiny configs)."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainingConfig
from repro.core.metrics import degradation
from repro.core.trainer import build_dataset, build_model


@pytest.mark.parametrize("algorithm", ["sgd", "ssgd", "asgd", "dc-asgd", "lc-asgd"])
def test_every_algorithm_runs_and_learns(algorithm):
    cfg = TrainingConfig.tiny(algorithm=algorithm, num_workers=2, epochs=4, seed=3)
    result = DistributedTrainer(cfg).run()
    assert result.algorithm == algorithm
    assert result.total_updates == cfg.epochs * 8  # 256/32 = 8 iters/epoch
    assert len(result.curve) == cfg.epochs
    # training reduces error well below the 90% chance level of 10 classes
    assert result.final_train_error < 0.85
    assert result.curve[-1].train_loss < result.curve[0].train_loss * 1.5


def test_sequential_sgd_zero_staleness():
    cfg = TrainingConfig.tiny(algorithm="sgd", num_workers=1, seed=0)
    result = DistributedTrainer(cfg).run()
    assert result.staleness["max"] == 0


def test_asgd_staleness_grows_with_workers():
    res = {}
    for m in (2, 4):
        cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=m, seed=0)
        res[m] = DistributedTrainer(cfg).run().staleness["mean"]
    assert res[4] > res[2] > 0
    assert res[4] == pytest.approx(3.0, abs=1.0)  # ~M-1 under uniform interleaving


def test_ssgd_zero_staleness_barrier():
    cfg = TrainingConfig.tiny(algorithm="ssgd", num_workers=4, seed=0)
    result = DistributedTrainer(cfg).run()
    assert result.staleness["max"] == 0


def test_ssgd_slower_wallclock_than_asgd():
    """The barrier makes SSGD's virtual time per batch at least ASGD's."""
    times = {}
    for algo in ("ssgd", "asgd"):
        cfg = TrainingConfig.tiny(algorithm=algo, num_workers=4, seed=0)
        times[algo] = DistributedTrainer(cfg).run().total_virtual_time
    assert times["ssgd"] >= times["asgd"]


def test_deterministic_same_seed():
    runs = []
    for _ in range(2):
        cfg = TrainingConfig.tiny(algorithm="lc-asgd", num_workers=2, epochs=2, seed=11)
        runs.append(DistributedTrainer(cfg).run())
    a, b = runs
    assert a.final_test_error == b.final_test_error
    assert a.total_virtual_time == b.total_virtual_time
    np.testing.assert_array_equal(
        [p.train_loss for p in a.curve], [p.train_loss for p in b.curve]
    )


def test_different_seeds_differ():
    cfg7 = TrainingConfig.tiny(algorithm="asgd", seed=7)
    cfg8 = TrainingConfig.tiny(algorithm="asgd", seed=8)
    r7 = DistributedTrainer(cfg7).run()
    r8 = DistributedTrainer(cfg8).run()
    assert r7.curve[-1].train_loss != r8.curve[-1].train_loss


def test_max_updates_override():
    cfg = TrainingConfig.tiny(algorithm="asgd", max_updates=5, seed=0)
    result = DistributedTrainer(cfg).run()
    assert result.total_updates == 5
    assert len(result.curve) >= 1


def test_lc_asgd_records_predictor_series():
    cfg = TrainingConfig.tiny(algorithm="lc-asgd", num_workers=2, epochs=3, seed=1)
    result = DistributedTrainer(cfg).run()
    assert len(result.loss_prediction_pairs) > 10
    assert len(result.step_prediction_pairs) > 10
    assert result.timers["loss_pred_ms"] > 0
    assert result.timers["step_pred_ms"] > 0
    assert np.isfinite(result.loss_prediction_error())
    assert np.isfinite(result.step_prediction_error())


def test_non_lc_has_no_predictor_series():
    cfg = TrainingConfig.tiny(algorithm="asgd", seed=1)
    result = DistributedTrainer(cfg).run()
    assert result.loss_prediction_pairs == []
    assert result.timers["loss_pred_ms"] == 0.0


def test_finishing_order_covers_all_workers():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=3, seed=0)
    result = DistributedTrainer(cfg).run()
    assert set(result.finishing_order) == {0, 1, 2}


def test_straggler_injection_runs():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, seed=0)
    cfg.cluster.straggler_probability = 0.5
    cfg.cluster.straggler_slowdown = 8.0
    result = DistributedTrainer(cfg).run()
    assert result.total_updates > 0


def test_zero_latency_links_ok():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, seed=0)
    cfg.cluster.link_latency = 0.0
    cfg.cluster.link_jitter = 0.0
    result = DistributedTrainer(cfg).run()
    assert result.total_updates > 0


@pytest.mark.parametrize("bn_mode", ["replace", "async"])
def test_bn_modes_run(bn_mode):
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, bn_mode=bn_mode, seed=0)
    result = DistributedTrainer(cfg).run()
    assert result.bn_mode == bn_mode
    assert result.final_test_error < 0.9


@pytest.mark.parametrize("compensation", ["scale", "sensitivity", "damping"])
def test_lc_compensation_modes_run(compensation):
    cfg = TrainingConfig.tiny(
        algorithm="lc-asgd", num_workers=2, epochs=2, compensation=compensation, seed=0
    )
    result = DistributedTrainer(cfg).run()
    assert result.final_train_error <= 1.0


@pytest.mark.parametrize("variant", ["ema", "last", "linear"])
def test_lc_baseline_predictors_run(variant):
    cfg = TrainingConfig.tiny(algorithm="lc-asgd", num_workers=2, epochs=2, seed=0)
    cfg.predictor.loss_variant = variant
    cfg.predictor.step_variant = "ema" if variant != "last" else "last"
    result = DistributedTrainer(cfg).run()
    assert result.total_updates > 0


def test_virtual_time_parallel_speedup():
    """More workers means less virtual time for the same number of batches."""
    times = {}
    for m in (1, 4):
        algo = "sgd" if m == 1 else "asgd"
        cfg = TrainingConfig.tiny(algorithm=algo, num_workers=m, seed=0)
        times[m] = DistributedTrainer(cfg).run().total_virtual_time
    assert times[4] < times[1] * 0.6


def test_curve_epochs_monotone():
    cfg = TrainingConfig.tiny(algorithm="asgd", epochs=4, seed=0)
    result = DistributedTrainer(cfg).run()
    epochs = [p.epoch for p in result.curve]
    times = [p.time for p in result.curve]
    assert epochs == sorted(epochs)
    assert times == sorted(times)


def test_build_dataset_variants():
    for name in ("cifar", "imagenet", "spirals"):
        cfg = TrainingConfig.tiny()
        cfg = cfg.with_overrides(dataset=name, dataset_kwargs={})
        train, test, n_cls = build_dataset(cfg)
        assert len(train) > 0 and len(test) > 0 and n_cls >= 2
    with pytest.raises(ValueError):
        build_dataset(TrainingConfig.tiny().with_overrides(dataset="bogus", dataset_kwargs={}))


def test_build_model_variants():
    cfg = TrainingConfig.tiny()
    for name, kwargs in (
        ("mlp", {"hidden": (8,), "batch_norm": True}),
        ("resnet_tiny", {"base_width": 4}),
    ):
        model = build_model(
            cfg.with_overrides(model=name, model_kwargs=kwargs), (3, 6, 6), 4
        )
        assert model.num_parameters() > 0
    with pytest.raises(ValueError):
        build_model(cfg.with_overrides(model="bogus", model_kwargs={}), (3, 6, 6), 4)
    with pytest.raises(ValueError, match="unknown mlp kwargs"):
        build_model(
            cfg.with_overrides(model="mlp", model_kwargs={"bogus": 1}), (3, 6, 6), 4
        )


def test_identical_replica_initialization():
    """All model replicas must start from the same random initialization."""
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=3, seed=5)
    trainer = DistributedTrainer(cfg)
    from repro.nn.module import get_flat_params

    flats = [get_flat_params(w.model) for w in trainer.workers]
    for flat in flats[1:]:
        np.testing.assert_array_equal(flats[0], flat)
    np.testing.assert_array_equal(flats[0], trainer.server.params)
