"""Evaluation cadence, curve bookkeeping and model-variant integration."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, TrainingConfig


def test_eval_every_epochs_halves_points():
    base = TrainingConfig.tiny(algorithm="asgd", epochs=4, seed=0)
    dense = DistributedTrainer(base).run()
    sparse_cfg = base.with_overrides(eval_every_epochs=2)
    sparse = DistributedTrainer(sparse_cfg).run()
    assert len(dense.curve) == 4
    assert len(sparse.curve) == 2
    # same final epoch either way
    assert sparse.curve[-1].epoch == dense.curve[-1].epoch


def test_resnet_through_distributed_trainer():
    """The full conv/BN2d path works end to end inside the simulator."""
    cfg = TrainingConfig.tiny(
        algorithm="lc-asgd",
        num_workers=2,
        epochs=1,
        seed=0,
        model="resnet_tiny",
        model_kwargs={"base_width": 4},
    )
    result = DistributedTrainer(cfg).run()
    assert result.total_updates == 8
    assert np.isfinite(result.final_test_error)


def test_spirals_dataset_through_trainer():
    cfg = TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=2, seed=0)
    cfg = cfg.with_overrides(
        dataset="spirals",
        dataset_kwargs={"num_samples": 300, "num_classes": 3, "test_size": 60},
        model_kwargs={"hidden": (16,), "batch_norm": False},
    )
    result = DistributedTrainer(cfg).run()
    assert result.final_test_error < 0.9


def test_no_bn_model_in_replace_mode_runs():
    """A model without BN layers must work under any bn_mode (empty stats)."""
    cfg = TrainingConfig.tiny(
        algorithm="asgd",
        num_workers=2,
        epochs=1,
        seed=0,
        bn_mode="replace",
        model_kwargs={"hidden": (16,), "batch_norm": False},
    )
    result = DistributedTrainer(cfg).run()
    assert result.total_updates > 0


def test_curve_times_strictly_positive_and_increasing():
    cfg = TrainingConfig.tiny(algorithm="ssgd", num_workers=2, epochs=3, seed=1)
    result = DistributedTrainer(cfg).run()
    times = result.times()
    assert (times > 0).all()
    assert (np.diff(times) > 0).all()


def test_momentum_config_affects_training():
    base = TrainingConfig.tiny(algorithm="asgd", epochs=2, seed=3)
    with_momentum = base.with_overrides(momentum=0.9)
    r0 = DistributedTrainer(base).run()
    r1 = DistributedTrainer(with_momentum).run()
    assert r0.curve[-1].train_loss != r1.curve[-1].train_loss
