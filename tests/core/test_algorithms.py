"""Update rules: SGD/SSGD/ASGD/DC-ASGD/LC-ASGD server-side mathematics."""

import numpy as np
import pytest

from repro.core.algorithms import (
    ASGDRule,
    DCASGDRule,
    LCASGDRule,
    SSGDRule,
    SequentialSGDRule,
    compensation_seed,
    make_update_rule,
)
from repro.core.state import GradientPayload


def payload(worker, grad, version=0):
    return GradientPayload(worker=worker, grad=np.asarray(grad, dtype=np.float64), pull_version=version)


class TestPlainRules:
    @pytest.mark.parametrize("rule_cls", [SequentialSGDRule, ASGDRule, LCASGDRule])
    def test_apply_is_sgd_step(self, rule_cls):
        rule = rule_cls()
        params = np.array([1.0, 2.0])
        advanced = rule.apply_gradient(params, payload(0, [0.5, -0.5]), lr=0.1, version=0)
        assert advanced
        np.testing.assert_allclose(params, [0.95, 2.05])

    def test_momentum_compounds(self):
        rule = ASGDRule(momentum=0.5)
        params = np.zeros(1)
        rule.apply_gradient(params, payload(0, [1.0]), lr=1.0, version=0)
        rule.apply_gradient(params, payload(0, [1.0]), lr=1.0, version=1)
        # v1=1 -> w=-1; v2=1.5 -> w=-2.5
        np.testing.assert_allclose(params, [-2.5])

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            ASGDRule(momentum=1.0)

    def test_reset_clears_velocity(self):
        rule = ASGDRule(momentum=0.9)
        params = np.zeros(1)
        rule.apply_gradient(params, payload(0, [1.0]), lr=1.0, version=0)
        rule.reset()
        assert rule._velocity is None


class TestSSGD:
    def test_barrier_averages(self):
        rule = SSGDRule(num_workers=2)
        params = np.array([0.0])
        assert not rule.apply_gradient(params, payload(0, [1.0]), lr=1.0, version=0)
        np.testing.assert_allclose(params, [0.0])  # no update before the barrier
        assert rule.apply_gradient(params, payload(1, [3.0]), lr=1.0, version=0)
        np.testing.assert_allclose(params, [-2.0])  # mean(1, 3) = 2

    def test_round_contributed(self):
        rule = SSGDRule(num_workers=2)
        params = np.zeros(1)
        rule.apply_gradient(params, payload(0, [1.0]), lr=1.0, version=0)
        assert rule.round_contributed(0)
        assert not rule.round_contributed(1)

    def test_duplicate_submission_rejected(self):
        rule = SSGDRule(num_workers=2)
        params = np.zeros(1)
        rule.apply_gradient(params, payload(0, [1.0]), lr=1.0, version=0)
        with pytest.raises(RuntimeError, match="twice"):
            rule.apply_gradient(params, payload(0, [1.0]), lr=1.0, version=0)

    def test_reset(self):
        rule = SSGDRule(num_workers=2)
        params = np.zeros(1)
        rule.apply_gradient(params, payload(0, [1.0]), lr=1.0, version=0)
        rule.reset()
        assert not rule.round_contributed(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SSGDRule(num_workers=0)


class TestDCASGD:
    def test_no_backup_plain_step(self):
        rule = DCASGDRule(lambda0=1.0, adaptive=False)
        params = np.array([1.0])
        rule.apply_gradient(params, payload(0, [1.0]), lr=0.1, version=0)
        np.testing.assert_allclose(params, [0.9])

    def test_formula3_compensation(self):
        """w -= lr (g + lambda g*g*(w - w_bak)) exactly (constant lambda)."""
        rule = DCASGDRule(lambda0=2.0, adaptive=False)
        params = np.array([1.0, -1.0])
        rule.on_pull(0, 0, params)  # backup = (1, -1)
        params += np.array([0.5, 0.5])  # server moved meanwhile
        g = np.array([0.2, -0.4])
        expected = params - 0.1 * (g + 2.0 * g * g * (params - np.array([1.0, -1.0])))
        rule.apply_gradient(params, payload(0, g.copy()), lr=0.1, version=3)
        np.testing.assert_allclose(params, expected)

    def test_zero_delay_no_compensation(self):
        """If the server has not moved, DC-ASGD reduces to plain ASGD."""
        rule = DCASGDRule(lambda0=5.0, adaptive=False)
        params = np.array([1.0])
        rule.on_pull(0, 0, params)
        rule.apply_gradient(params, payload(0, [0.5]), lr=0.1, version=0)
        np.testing.assert_allclose(params, [1.0 - 0.05])

    def test_adaptive_lambda_scales_with_grad_magnitude(self):
        rule = DCASGDRule(lambda0=0.1, adaptive=True)
        big = rule._lambda_t(np.array([10.0]))
        rule2 = DCASGDRule(lambda0=0.1, adaptive=True)
        small = rule2._lambda_t(np.array([0.01]))
        assert small > big  # smaller gradients -> larger relative compensation

    def test_reset(self):
        rule = DCASGDRule()
        params = np.zeros(2)
        rule.on_pull(0, 0, params)
        rule.reset()
        assert rule._backups == {}
        assert rule._grad_sq_ema is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DCASGDRule(lambda0=-1)
        with pytest.raises(ValueError):
            DCASGDRule(ema_decay=0)


class TestCompensationSeed:
    def test_zero_steps_is_identity(self):
        assert compensation_seed("damping", 1.0, 0.0, 0, 0.7) == 1.0

    def test_scale_mode(self):
        # (l + lam*l_delay)/l = (2 + 0.5*4)/2 = 2.0
        assert compensation_seed("scale", 2.0, 4.0, 2, 0.5) == pytest.approx(2.0)

    def test_sensitivity_mode(self):
        assert compensation_seed("sensitivity", 2.0, 0.0, 3, 0.5, sensitivity=0.4) == pytest.approx(1.2)

    def test_damping_monotone_in_forecast(self):
        """Lower predicted future loss -> stronger damping."""
        high = compensation_seed("damping", 2.0, 2.0 * 4, 4, 0.7)  # future == current
        low = compensation_seed("damping", 2.0, 1.0 * 4, 4, 0.7)  # future halved
        assert low < high <= 1.0

    def test_damping_never_amplifies(self):
        seed = compensation_seed("damping", 2.0, 10.0 * 4, 4, 0.7)  # rising forecast
        assert seed <= 1.0

    def test_seed_clipped(self):
        assert compensation_seed("scale", 1e-9, 100.0, 5, 1.0) <= 3.0
        assert compensation_seed("sensitivity", 1.0, 0.0, 5, 1.0, sensitivity=-100) >= 0.05

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            compensation_seed("bogus", 1.0, 1.0, 1, 0.5)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("sgd", SequentialSGDRule),
            ("ssgd", SSGDRule),
            ("asgd", ASGDRule),
            ("dc-asgd", DCASGDRule),
            ("lc-asgd", LCASGDRule),
        ],
    )
    def test_make(self, name, cls):
        rule = make_update_rule(name, num_workers=4, momentum=0.5)
        assert isinstance(rule, cls)
        assert rule.momentum == 0.5

    def test_requires_compensation_flag(self):
        assert make_update_rule("lc-asgd", num_workers=2).requires_compensation
        assert not make_update_rule("asgd", num_workers=2).requires_compensation

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_update_rule("bogus", num_workers=2)
