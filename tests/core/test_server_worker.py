"""ParameterServer (Algorithm 2) and DistributedWorker (Algorithm 1) units."""

import numpy as np
import pytest

from repro.core.algorithms import ASGDRule, LCASGDRule, SSGDRule
from repro.core.predictors import EMALossPredictor, EMAStepPredictor
from repro.core.server import ParameterServer
from repro.core.state import GradientPayload, WorkerState
from repro.core.worker import DistributedWorker
from repro.data.dataset import ArrayDataset
from repro.data.loader import DataLoader
from repro.nn.mlp import MLP
from repro.nn.module import get_flat_params
from repro.optim.lr_scheduler import MultiStepLR


def make_server(rule=None, workers=2, with_predictors=False, iters_per_epoch=4):
    rule = rule or ASGDRule()
    kwargs = {}
    if with_predictors:
        kwargs = dict(
            loss_predictor=EMALossPredictor(),
            step_predictor=EMAStepPredictor(),
        )
    return ParameterServer(
        np.zeros(4),
        rule,
        MultiStepLR(0.1, (2,), 0.1),
        iters_per_epoch=iters_per_epoch,
        **kwargs,
    )


def grad(worker, pull_version, value=1.0):
    return GradientPayload(worker=worker, grad=np.full(4, value), pull_version=pull_version)


class TestServer:
    def test_pull_returns_copy(self):
        server = make_server()
        w = server.handle_pull(0)
        w[:] = 99.0
        np.testing.assert_array_equal(server.params, 0.0)

    def test_version_and_staleness(self):
        server = make_server()
        server.handle_pull(0)
        server.handle_pull(1)
        advanced, staleness = server.handle_gradient(grad(0, 0))
        assert advanced and staleness == 0
        advanced, staleness = server.handle_gradient(grad(1, 0))
        assert staleness == 1  # worker 1's pull is one version behind now

    def test_epoch_and_lr_schedule(self):
        server = make_server(iters_per_epoch=2)
        assert server.epoch == 0
        assert server.current_lr == pytest.approx(0.1)
        for i in range(4):
            server.handle_pull(0)
            server.handle_gradient(grad(0, server.version))
        assert server.epoch == 2
        assert server.current_lr == pytest.approx(0.01)  # milestone at epoch 2

    def test_non_finite_gradient_rejected(self):
        server = make_server()
        server.handle_pull(0)
        bad = GradientPayload(worker=0, grad=np.array([np.nan, 0, 0, 0]), pull_version=0)
        with pytest.raises(FloatingPointError, match="diverged"):
            server.handle_gradient(bad)

    def test_gradient_shape_check(self):
        server = make_server()
        with pytest.raises(ValueError, match="size"):
            server.handle_gradient(GradientPayload(worker=0, grad=np.zeros(3), pull_version=0))

    def test_ssgd_barrier_queues_pulls(self):
        server = make_server(rule=SSGDRule(num_workers=2))
        server.handle_pull(0)
        server.handle_pull(1)
        server.handle_gradient(grad(0, 0))
        # worker 0 already contributed: its next pull must queue
        assert server.handle_pull(0, request_time=1.5) is None
        assert server.pending_pulls == [(0, 1.5)]
        advanced, _ = server.handle_gradient(grad(1, 0))
        assert advanced
        drained = server.drain_pending_pulls()
        assert drained == [(0, 1.5)]
        assert server.pull_versions[0] == 1

    def test_ssgd_drain_preserves_fifo_order(self):
        """Barrier-queued pulls are served strictly in arrival order."""
        server = make_server(rule=SSGDRule(num_workers=3), workers=3)
        for w in range(3):
            server.handle_pull(w)
        server.handle_gradient(grad(0, 0))
        server.handle_gradient(grad(2, 0))
        # two contributors pull again before the round closes: both queue
        assert server.handle_pull(2, request_time=0.7) is None
        assert server.handle_pull(0, request_time=0.9) is None
        assert server.pending_pulls == [(2, 0.7), (0, 0.9)]
        advanced, _ = server.handle_gradient(grad(1, 0))
        assert advanced
        drained = server.drain_pending_pulls()
        assert [w for w, _ in drained] == [2, 0]
        assert [t for _, t in drained] == [0.7, 0.9]

    def test_ssgd_drain_serves_post_barrier_version(self):
        """Drained pulls observe the version advanced by the closing round."""
        server = make_server(rule=SSGDRule(num_workers=2))
        server.handle_pull(0)
        server.handle_pull(1)
        server.handle_gradient(grad(0, 0))
        assert server.handle_pull(0) is None
        server.handle_gradient(grad(1, 0))
        assert server.version == 1
        server.drain_pending_pulls()
        assert server.pull_versions[0] == 1
        assert server.pending_pulls == []
        # the queue does not resurrect: draining again is a no-op
        assert server.drain_pending_pulls() == []

    def test_ssgd_fresh_worker_not_queued(self):
        """Only workers that already contributed this round are barred."""
        server = make_server(rule=SSGDRule(num_workers=2))
        server.handle_pull(0)
        server.handle_gradient(grad(0, 0))
        # worker 1 has not contributed yet: its pull is served immediately
        assert server.handle_pull(1) is not None
        assert server.pending_pulls == []

    def test_handle_combined_logs_iter_and_applies(self):
        server = make_server()
        server.handle_pull(0)
        state = WorkerState(worker=0, loss=1.5)
        advanced, staleness = server.handle_combined(state, grad(0, 0))
        assert advanced and staleness == 0
        assert server.iter_log == [0]
        assert server.batches_processed == 1

    def test_handle_state_without_predictors_returns_none(self):
        server = make_server()
        state = WorkerState(worker=0, loss=1.0)
        assert server.handle_state(state) is None
        assert server.iter_log == [0]

    def test_handle_state_with_predictors(self):
        server = make_server(with_predictors=True)
        server.handle_pull(0)
        reply = server.handle_state(WorkerState(worker=0, loss=2.0, t_comm=0.1, t_comp=0.2))
        assert reply is not None
        assert reply.l_delay >= 0.0
        assert reply.predicted_step >= 0
        # landing the gradient trains the step predictor with the truth
        server.handle_gradient(grad(0, 0))
        assert len(server.step_prediction_pairs) == 1

    def test_loss_prediction_pairs_recorded(self):
        server = make_server(with_predictors=True)
        for i in range(3):
            server.handle_pull(0)
            server.handle_state(WorkerState(worker=0, loss=2.0 - 0.1 * i))
            server.handle_gradient(grad(0, server.version))
        # first arrival has no forecast yet; later ones do
        assert len(server.loss_prediction_pairs) == 2

    def test_state_rejects_nonfinite_loss(self):
        with pytest.raises(ValueError, match="non-finite"):
            WorkerState(worker=0, loss=float("nan"))


class TestWorker:
    def make_worker(self, batch_norm=True):
        rng = np.random.default_rng(0)
        model = MLP((6, 5, 3), batch_norm=batch_norm, rng=rng)
        data = ArrayDataset(
            rng.standard_normal((32, 6)).astype(np.float32), rng.integers(0, 3, 32)
        )
        return DistributedWorker(0, model, DataLoader(data, 8, seed=0)), model

    def test_forward_produces_state(self):
        worker, model = self.make_worker()
        worker.load_params(get_flat_params(model), version=3, t_comm=0.05)
        state = worker.forward()
        assert state.worker == 0
        assert np.isfinite(state.loss)
        assert state.pull_version == 3
        assert state.t_comm == pytest.approx(0.05)
        assert len(state.bn_stats) == 1  # MLP(6,5,3) has one hidden BN layer

    def test_backward_before_forward_raises(self):
        worker, _ = self.make_worker()
        with pytest.raises(RuntimeError, match="before forward"):
            worker.backward()

    def test_backward_produces_gradient(self):
        worker, model = self.make_worker()
        worker.load_params(get_flat_params(model), version=0, t_comm=0.0)
        worker.forward()
        payload = worker.backward(t_comp=0.4)
        assert payload.grad.shape == (model.num_parameters(),)
        assert np.abs(payload.grad).max() > 0
        assert worker.last_t_comp == pytest.approx(0.4)
        # graph consumed: calling again raises
        with pytest.raises(RuntimeError):
            worker.backward()

    def test_compensated_backward_scales_gradient(self):
        from repro.core.state import CompensationReply

        worker, model = self.make_worker()
        flat = get_flat_params(model)

        worker.load_params(flat, 0, 0.0)
        worker.forward()
        plain = worker.backward().grad

        worker.load_params(flat, 0, 0.0)
        state = worker.forward()
        # damping with future loss at half the current level -> seed < 1
        reply = CompensationReply(worker=0, l_delay=state.loss * 0.5 * 4, predicted_step=4)
        damped = worker.backward(reply=reply, lc_lambda=0.7, compensation="damping").grad
        ratio = np.linalg.norm(damped) / np.linalg.norm(plain)
        assert ratio < 0.99

    def test_forward_backward_fused(self):
        worker, model = self.make_worker(batch_norm=False)
        worker.load_params(get_flat_params(model), 0, 0.0)
        state, payload = worker.forward_backward()
        assert state.bn_stats == []
        assert payload.pull_version == 0
