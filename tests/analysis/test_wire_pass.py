"""wire-completeness pass on synthetic message/wire/protocol fixtures."""

from __future__ import annotations

from repro.analysis import run_passes

GOOD_MESSAGES = """\
class Message:
    expedite = False


class Ping(Message):
    worker: int
    tag: str


class Blob(Message):
    worker: int
    payload: GradientPayload
"""

GOOD_WIRE = """\
def _enc_ping(msg):
    return {}, []


def _dec_ping(fields, arrays, owned):
    return None


def _enc_blob(msg):
    return {}, []


def _dec_blob(fields, arrays, owned):
    return None


_CODECS = {
    "Ping": (Ping, _enc_ping, _dec_ping),
    "Blob": (Blob, _enc_blob, _dec_blob),
}
"""


def test_clean_fixture_has_no_findings(make_fixture_tree):
    root = make_fixture_tree(
        {"runtime/messages.py": GOOD_MESSAGES, "runtime/wire.py": GOOD_WIRE}
    )
    assert run_passes(root, rules=["wire"]) == []


def test_message_without_codec_is_flagged(make_fixture_tree):
    root = make_fixture_tree(
        {
            "runtime/messages.py": GOOD_MESSAGES + "\n\nclass Orphan(Message):\n    worker: int\n",
            "runtime/wire.py": GOOD_WIRE,
        }
    )
    findings = run_passes(root, rules=["wire"])
    assert len(findings) == 1
    assert findings[0].path == "runtime/messages.py"
    assert "Orphan has no codec" in findings[0].message


def test_missing_decoder_function_is_flagged(make_fixture_tree):
    wire = GOOD_WIRE.replace(
        '"Blob": (Blob, _enc_blob, _dec_blob),', '"Blob": (Blob, _enc_blob, _dec_missing),'
    )
    root = make_fixture_tree({"runtime/messages.py": GOOD_MESSAGES, "runtime/wire.py": wire})
    findings = run_passes(root, rules=["wire"])
    assert len(findings) == 1
    assert findings[0].path == "runtime/wire.py"
    assert "no decoder" in findings[0].message


def test_codec_entry_for_unknown_class_is_flagged(make_fixture_tree):
    wire = GOOD_WIRE + "\n\ndef _enc_x(m):\n    return {}, []\n\n\ndef _dec_x(f, a, o):\n    return None\n\n\n_CODECS.update({})\n"
    wire = wire.replace(
        '"Blob": (Blob, _enc_blob, _dec_blob),',
        '"Blob": (Blob, _enc_blob, _dec_blob),\n    "Ghost": (Ghost, _enc_x, _dec_x),',
    )
    root = make_fixture_tree({"runtime/messages.py": GOOD_MESSAGES, "runtime/wire.py": wire})
    findings = run_passes(root, rules=["wire"])
    assert len(findings) == 1
    assert "not a Message subclass" in findings[0].message


def test_non_wire_safe_field_is_flagged(make_fixture_tree):
    messages = GOOD_MESSAGES + "\n\nclass Weird(Message):\n    worker: int\n    junk: dict\n"
    wire = GOOD_WIRE.replace(
        '"Blob": (Blob, _enc_blob, _dec_blob),',
        '"Blob": (Blob, _enc_blob, _dec_blob),\n    "Weird": (Weird, _enc_blob, _dec_blob),',
    )
    root = make_fixture_tree({"runtime/messages.py": messages, "runtime/wire.py": wire})
    findings = run_passes(root, rules=["wire"])
    assert len(findings) == 1
    assert "Weird.junk" in findings[0].message
    assert "'dict'" in findings[0].message


def test_optional_scalar_fields_are_wire_safe(make_fixture_tree):
    messages = GOOD_MESSAGES + "\n\nclass Opt(Message):\n    step: Optional[int]\n"
    wire = GOOD_WIRE.replace(
        '"Blob": (Blob, _enc_blob, _dec_blob),',
        '"Blob": (Blob, _enc_blob, _dec_blob),\n    "Opt": (Opt, _enc_blob, _dec_blob),',
    )
    root = make_fixture_tree({"runtime/messages.py": messages, "runtime/wire.py": wire})
    assert run_passes(root, rules=["wire"]) == []


def test_fleet_kind_built_but_not_parseable(make_fixture_tree):
    root = make_fixture_tree(
        {
            "fleet/protocol.py": """\
            _FRAME_KINDS = {"hello": (), "welcome": ()}


            def _frame(kind, **fields):
                return {"kind": kind, **fields}


            def hello_frame():
                return _frame("hello")


            def welcome_frame():
                return _frame("welcome")


            def rogue_frame():
                return _frame("rogue")
            """
        }
    )
    findings = run_passes(root, rules=["wire"])
    assert len(findings) == 1
    assert "'rogue'" in findings[0].message and "missing from" in findings[0].message


def test_fleet_kind_parseable_but_never_built(make_fixture_tree):
    root = make_fixture_tree(
        {
            "fleet/protocol.py": """\
            _FRAME_KINDS = {"hello": (), "zombie": ()}


            def _frame(kind, **fields):
                return {"kind": kind, **fields}


            def hello_frame():
                return _frame("hello")
            """
        }
    )
    findings = run_passes(root, rules=["wire"])
    assert len(findings) == 1
    assert "'zombie'" in findings[0].message and "no builder" in findings[0].message


def test_proc_handshake_kind_sent_but_never_examined(make_fixture_tree):
    root = make_fixture_tree(
        {
            "runtime/proc_worker.py": """\
            def handshake(conn):
                conn.send_control(ControlFrame("hello", {}))
                conn.send_control(ControlFrame("surprise", {}))
            """,
            "runtime/proc_backend.py": """\
            def accept(frame):
                if frame.kind == "hello":
                    return True
                return False
            """,
        }
    )
    findings = run_passes(root, rules=["wire"])
    assert len(findings) == 1
    assert findings[0].path == "runtime/proc_worker.py"
    assert "'surprise'" in findings[0].message
