"""determinism pass: RNG hygiene everywhere, wall clocks in virtual time."""

from __future__ import annotations

from repro.analysis import run_passes


def _messages(findings):
    return [f.message for f in findings]


def test_unseeded_default_rng_flagged_anywhere(make_fixture_tree):
    root = make_fixture_tree(
        {"runtime/rt.py": "import numpy as np\nrng = np.random.default_rng()\n"}
    )
    findings = run_passes(root, rules=["determinism"])
    assert len(findings) == 1
    assert "unseeded" in findings[0].message


def test_seeded_default_rng_is_fine(make_fixture_tree):
    root = make_fixture_tree(
        {
            "core/a.py": """\
            import numpy as np

            rng1 = np.random.default_rng(7)
            rng2 = np.random.default_rng(seed=7)
            """
        }
    )
    assert run_passes(root, rules=["determinism"]) == []


def test_stdlib_random_import_flagged(make_fixture_tree):
    root = make_fixture_tree(
        {"runtime/rt.py": "import random\n", "core/a.py": "from random import shuffle\n"}
    )
    findings = run_passes(root, rules=["determinism"])
    assert len(findings) == 2
    assert all("process-global" in m for m in _messages(findings))


def test_numpy_global_rng_state_flagged(make_fixture_tree):
    root = make_fixture_tree(
        {"utils/u.py": "import numpy as np\nnp.random.seed(0)\nx = np.random.randn(3)\n"}
    )
    findings = run_passes(root, rules=["determinism"])
    assert len(findings) == 2
    assert any("np.random.seed" in m for m in _messages(findings))


def test_wall_clock_flagged_only_in_virtual_time_modules(make_fixture_tree):
    clocky = "import time\nt = time.perf_counter()\n"
    root = make_fixture_tree(
        {
            "core/sim.py": clocky,
            "cluster/events.py": clocky,
            "runtime/backend.py": clocky,  # real-time: allowlisted
            "fleet/agent.py": clocky,  # real-time: allowlisted
        }
    )
    findings = run_passes(root, rules=["determinism"])
    assert sorted(f.path for f in findings) == ["cluster/events.py", "core/sim.py"]
    assert all("virtual-time" in m for m in _messages(findings))


def test_bare_clock_import_flagged_in_virtual_module(make_fixture_tree):
    root = make_fixture_tree(
        {"nn/layer.py": "from time import monotonic as now\nt = now()\n"}
    )
    findings = run_passes(root, rules=["determinism"])
    assert len(findings) == 1
    assert findings[0].line == 2


def test_sleep_is_not_a_clock_read(make_fixture_tree):
    root = make_fixture_tree({"core/sim.py": "import time\ntime.sleep(0.1)\n"})
    assert run_passes(root, rules=["determinism"]) == []
