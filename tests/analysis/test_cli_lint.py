"""`repro lint` CLI: exit codes, baseline flow, rule selection."""

from __future__ import annotations

import json

from repro.cli import main


def _write(root, rel, content):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


def test_lint_clean_tree_exits_zero(tmp_path, capsys):
    _write(tmp_path, "pkg/core/ok.py", "x = 1\n")
    assert main(["lint", "--root", str(tmp_path / "pkg")]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_lint_findings_exit_nonzero_with_locations(tmp_path, capsys):
    _write(tmp_path, "pkg/core/bad.py", "import numpy as np\nrng = np.random.default_rng()\n")
    assert main(["lint", "--root", str(tmp_path / "pkg")]) == 1
    out = capsys.readouterr().out
    assert "core/bad.py:2:" in out
    assert "[determinism]" in out


def test_lint_rule_filter(tmp_path):
    _write(tmp_path, "pkg/core/bad.py", "import numpy as np\nrng = np.random.default_rng()\n")
    assert main(["lint", "--root", str(tmp_path / "pkg"), "--rule", "wire"]) == 0
    assert main(["lint", "--root", str(tmp_path / "pkg"), "--rule", "determinism"]) == 1


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("wire", "determinism", "locks", "registry"):
        assert rule in out


def test_lint_missing_root_exits_two(tmp_path):
    assert main(["lint", "--root", str(tmp_path / "nope")]) == 2


def test_update_baseline_then_clean(tmp_path, capsys):
    _write(tmp_path, "pkg/core/bad.py", "import numpy as np\nrng = np.random.default_rng()\n")
    baseline = tmp_path / "lint-baseline.json"
    assert (
        main(
            [
                "lint", "--root", str(tmp_path / "pkg"),
                "--baseline", str(baseline), "--update-baseline",
            ]
        )
        == 0
    )
    doc = json.loads(baseline.read_text())
    assert doc["version"] == 1 and len(doc["suppressions"]) == 1

    capsys.readouterr()
    assert main(["lint", "--root", str(tmp_path / "pkg"), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_baseline_discovered_walking_up_from_root(tmp_path):
    _write(tmp_path, "pkg/core/bad.py", "import numpy as np\nrng = np.random.default_rng()\n")
    (tmp_path / "lint-baseline.json").write_text(
        json.dumps(
            {
                "version": 1,
                "suppressions": [
                    {
                        "rule": "determinism",
                        "path": "core/bad.py",
                        "message": (
                            "unseeded np.random.default_rng() — every stream must "
                            "descend from a seed (use repro.utils.rng.fallback_rng "
                            "for optional-rng APIs)"
                        ),
                        "reason": "test fixture",
                    }
                ],
            }
        )
    )
    assert main(["lint", "--root", str(tmp_path / "pkg")]) == 0


def test_stale_baseline_entry_warns_but_passes(tmp_path, capsys):
    _write(tmp_path, "pkg/core/ok.py", "x = 1\n")
    baseline = tmp_path / "lint-baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "suppressions": [
                    {"rule": "wire", "path": "gone.py", "message": "x", "reason": "old"}
                ],
            }
        )
    )
    assert main(["lint", "--root", str(tmp_path / "pkg"), "--baseline", str(baseline)]) == 0
    assert "stale baseline entry" in capsys.readouterr().err
