"""Baseline load/save/apply semantics."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Finding, apply_baseline, load_baseline, save_baseline


def _finding(message: str) -> Finding:
    return Finding("wire", "runtime/messages.py", 10, message)


def test_absent_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == []


def test_roundtrip_and_apply(tmp_path):
    path = tmp_path / "lint-baseline.json"
    old = _finding("old finding")
    save_baseline(path, [old], reason="inherited")
    entries = load_baseline(path)
    assert entries == [
        {
            "rule": "wire",
            "path": "runtime/messages.py",
            "message": "old finding",
            "reason": "inherited",
        }
    ]

    fresh, suppressed, stale = apply_baseline([old, _finding("new finding")], entries)
    assert [f.message for f in fresh] == ["new finding"]
    assert [f.message for f in suppressed] == ["old finding"]
    assert stale == []


def test_stale_entries_surface(tmp_path):
    path = tmp_path / "lint-baseline.json"
    save_baseline(path, [_finding("fixed since")])
    fresh, suppressed, stale = apply_baseline([], load_baseline(path))
    assert fresh == [] and suppressed == []
    assert [e["message"] for e in stale] == ["fixed since"]


def test_baseline_matches_by_fingerprint_not_line(tmp_path):
    path = tmp_path / "lint-baseline.json"
    save_baseline(path, [_finding("same message")])
    moved = Finding("wire", "runtime/messages.py", 999, "same message")
    fresh, suppressed, _ = apply_baseline([moved], load_baseline(path))
    assert fresh == [] and suppressed == [moved]


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "lint-baseline.json"
    path.write_text(json.dumps({"version": 99, "suppressions": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)


def test_load_rejects_malformed_document(tmp_path):
    path = tmp_path / "lint-baseline.json"
    path.write_text(json.dumps({"version": 1, "suppressions": "nope"}))
    with pytest.raises(ValueError):
        load_baseline(path)
