"""The linter run against this repo itself, plus mutation acceptance checks.

The self-check is the tier-1 gate the ISSUE asks for: ``repro lint`` must
be clean over ``src/repro`` modulo the committed baseline.  The mutation
tests then prove the gate has teeth — deleting a wire codec registration
or reintroducing an unseeded ``default_rng()`` must produce a finding.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

import repro
from repro.analysis import apply_baseline, load_baseline, run_passes

PACKAGE_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = PACKAGE_ROOT.parent.parent
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_repo_is_lint_clean_modulo_baseline():
    findings = run_passes(PACKAGE_ROOT)
    entries = load_baseline(BASELINE) if BASELINE.is_file() else []
    fresh, _suppressed, stale = apply_baseline(findings, entries)
    assert not fresh, "non-baselined lint findings:\n" + "\n".join(str(f) for f in fresh)
    assert not stale, "stale baseline entries (fix was shipped, prune them): " + repr(stale)


def test_committed_baseline_is_empty():
    # the ISSUE's bar: an empty (or explicitly justified) baseline.  If a
    # future change has to baseline something, document why and drop this.
    assert load_baseline(BASELINE) == []


@pytest.fixture
def package_copy(tmp_path):
    dest = tmp_path / "repro"
    shutil.copytree(PACKAGE_ROOT, dest, ignore=shutil.ignore_patterns("__pycache__"))
    return dest


def test_deleting_a_wire_codec_registration_is_caught(package_copy):
    wire = package_copy / "runtime" / "wire.py"
    text = wire.read_text()
    target = '"GossipReport": (GossipReport, _enc_gossip_report, _dec_gossip_report),'
    assert target in text, "mutation target moved; update this test"
    wire.write_text(text.replace(target, ""))

    findings = run_passes(package_copy, rules=["wire"])
    assert any(
        "GossipReport has no codec" in f.message and f.path == "runtime/messages.py"
        for f in findings
    ), [str(f) for f in findings]
    # findings carry a real path:line location
    assert all(f.line >= 1 for f in findings)


def test_unseeded_default_rng_in_nn_is_caught(package_copy):
    mlp = package_copy / "nn" / "mlp.py"
    mlp.write_text(
        mlp.read_text() + "\n\n_BAD_RNG = np.random.default_rng()\n"
    )
    findings = run_passes(package_copy, rules=["determinism"])
    assert len(findings) == 1
    assert findings[0].path == "nn/mlp.py"
    assert "unseeded" in findings[0].message


def test_clean_package_copy_stays_clean(package_copy):
    # the copy must reproduce the self-check (guards against the mutation
    # tests passing for the wrong reason, e.g. a path-dependent allowlist)
    assert run_passes(package_copy) == []
