"""Fixture-tree helpers for the analysis-pass tests."""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict

import pytest


def write_tree(root: Path, files: Dict[str, str]) -> Path:
    """Materialize ``{relpath: source}`` under ``root`` and return it."""
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


@pytest.fixture
def make_fixture_tree(tmp_path):
    """Factory: build a throwaway source tree for a pass to analyze."""

    def _make(files: Dict[str, str]) -> Path:
        return write_tree(tmp_path / "pkg", files)

    return _make
