"""registry-consistency pass on a synthetic mini-repo."""

from __future__ import annotations

from repro.analysis import run_passes

CONFIG = """\
ALGORITHMS = ("sgd", "asgd")
TOPOLOGIES = ("ring",)
COMM_CODECS = ("raw32",)
"""

ALGORITHMS_IMPL = """\
def make_update_rule(algorithm):
    if algorithm == "sgd":
        return 1
    if algorithm == "asgd":
        return 2
    raise ValueError(algorithm)
"""

TOPOLOGY = """\
def register_topology(name, builder):
    pass


register_topology("ring", None)
"""

CODECS = """\
def register_codec(cls):
    pass


class Raw32Codec:
    name = "raw32"


register_codec(Raw32Codec)
"""

CLI = '"""Choices: --topology ring, --comm-codec raw32."""\n'

README = "# fixture\n\nAlgorithms: `sgd`, `asgd`. Topology: `ring`. Codec: `raw32`.\n"


def _tree(make_fixture_tree, **overrides):
    files = {
        "core/config.py": CONFIG,
        "core/algorithms/__init__.py": ALGORITHMS_IMPL,
        "cluster/topology.py": TOPOLOGY,
        "runtime/codecs.py": CODECS,
        "cli.py": CLI,
    }
    files.update(overrides)
    root = make_fixture_tree(files)
    (root / "README.md").write_text(overrides.get("README.md", README))
    return root


def test_clean_fixture(make_fixture_tree):
    root = _tree(make_fixture_tree)
    assert run_passes(root, rules=["registry"]) == []


def test_declared_algorithm_without_dispatch(make_fixture_tree):
    root = _tree(
        make_fixture_tree,
        **{"core/config.py": CONFIG.replace('"sgd", "asgd"', '"sgd", "asgd", "phantom"')},
    )
    findings = run_passes(root, rules=["registry"])
    # phantom: no dispatch branch, and no README mention... but the README
    # check only covers *registered* names, so exactly one finding
    assert len(findings) == 1
    assert "'phantom'" in findings[0].message
    assert "never dispatches" in findings[0].message


def test_dispatched_algorithm_missing_from_config(make_fixture_tree):
    impl = ALGORITHMS_IMPL.replace(
        "    raise ValueError(algorithm)",
        '    if algorithm == "lc-asgd":\n        return 3\n    raise ValueError(algorithm)',
    )
    readme = README + "\nAlso mentions lc-asgd so only the config finding fires.\n"
    root = _tree(
        make_fixture_tree, **{"core/algorithms/__init__.py": impl, "README.md": readme}
    )
    findings = run_passes(root, rules=["registry"])
    assert len(findings) == 1
    assert "'lc-asgd'" in findings[0].message
    assert "missing from core/config.py ALGORITHMS" in findings[0].message


def test_config_tuple_entry_with_no_registration(make_fixture_tree):
    root = _tree(
        make_fixture_tree,
        **{"core/config.py": CONFIG.replace('("ring",)', '("ring", "star")')},
    )
    findings = run_passes(root, rules=["registry"])
    assert len(findings) == 1
    assert "'star'" in findings[0].message
    assert "no topology of that name is registered" in findings[0].message


def test_registered_topology_missing_from_config_cli_and_readme(make_fixture_tree):
    topo = TOPOLOGY + '\nregister_topology("torus", None)\n'
    root = _tree(make_fixture_tree, **{"cluster/topology.py": topo})
    findings = run_passes(root, rules=["registry"])
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("missing from core/config.py TOPOLOGIES" in m for m in messages)
    assert any("not advertised anywhere in cli.py" in m for m in messages)
    assert any("does not appear in the README" in m for m in messages)


def test_codec_names_resolve_through_class_attribute(make_fixture_tree):
    codecs = CODECS + '\n\nclass Fp16Codec:\n    name = "fp16"\n\n\nregister_codec(Fp16Codec)\n'
    root = _tree(make_fixture_tree, **{"runtime/codecs.py": codecs})
    findings = run_passes(root, rules=["registry"])
    messages = [f.message for f in findings]
    assert len(findings) == 3  # config tuple, cli.py, README — all miss fp16
    assert all("'fp16'" in m for m in messages)


def test_readme_mention_is_whole_word(make_fixture_tree):
    # 'ring' appearing only inside 'string' must not count as a mention
    readme = "# fixture\n\nAlgorithms: `sgd`, `asgd`. A string. Codec: `raw32`.\n"
    root = _tree(make_fixture_tree, **{"README.md": readme})
    findings = run_passes(root, rules=["registry"])
    assert len(findings) == 1
    assert "'ring'" in findings[0].message
    assert "README" in findings[0].message
