"""trace-registry pass on synthetic registry/emit-site fixtures."""

from __future__ import annotations

from repro.analysis import run_passes

GOOD_EVENTS = """\
EVENT_KINDS = {
    "span": EventKind(
        name="span",
        doc="A timed phase.",
        fields=("phase", "dur_ms"),
    ),
    "mark": EventKind(
        name="mark",
        doc="A freeform annotation.",
        fields=("label",),
    ),
}
"""

GOOD_SITES = """\
def instrumented(recorder, t):
    recorder.emit(t, "span", 3, phase="compute", dur_ms=1.5)
    recorder.emit(t, "mark", label="epoch-end")
"""


def test_clean_fixture_has_no_findings(make_fixture_tree):
    root = make_fixture_tree(
        {"obs/events.py": GOOD_EVENTS, "runtime/worker.py": GOOD_SITES}
    )
    assert run_passes(root, rules=["trace"]) == []


def test_tree_without_obs_layer_is_skipped(make_fixture_tree):
    root = make_fixture_tree({"runtime/worker.py": GOOD_SITES})
    assert run_passes(root, rules=["trace"]) == []


def test_missing_registry_table_is_flagged(make_fixture_tree):
    root = make_fixture_tree({"obs/events.py": "TRACE_VERSION = 1\n"})
    findings = run_passes(root, rules=["trace"])
    assert len(findings) == 1
    assert "no EVENT_KINDS" in findings[0].message


def test_unregistered_kind_is_flagged(make_fixture_tree):
    sites = GOOD_SITES + '\n\ndef rogue(recorder, t):\n    recorder.emit(t, "surprise", label="x")\n'
    root = make_fixture_tree({"obs/events.py": GOOD_EVENTS, "runtime/worker.py": sites})
    findings = run_passes(root, rules=["trace"])
    assert len(findings) == 1
    assert findings[0].path == "runtime/worker.py"
    assert "unregistered trace event kind 'surprise'" in findings[0].message


def test_wrong_fields_are_flagged(make_fixture_tree):
    sites = GOOD_SITES.replace(
        'recorder.emit(t, "mark", label="epoch-end")',
        'recorder.emit(t, "mark", text="epoch-end")',
    )
    root = make_fixture_tree({"obs/events.py": GOOD_EVENTS, "runtime/worker.py": sites})
    findings = run_passes(root, rules=["trace"])
    assert len(findings) == 1
    assert "('text',)" in findings[0].message
    assert "('label',)" in findings[0].message


def test_missing_field_is_flagged(make_fixture_tree):
    sites = GOOD_SITES.replace(
        'recorder.emit(t, "span", 3, phase="compute", dur_ms=1.5)',
        'recorder.emit(t, "span", 3, phase="compute")',
    )
    root = make_fixture_tree({"obs/events.py": GOOD_EVENTS, "runtime/worker.py": sites})
    findings = run_passes(root, rules=["trace"])
    assert len(findings) == 1
    assert "declares ('dur_ms', 'phase')" in findings[0].message


def test_computed_kind_is_flagged(make_fixture_tree):
    sites = GOOD_SITES + "\n\ndef dynamic(recorder, t, kind):\n    recorder.emit(t, kind, label='x')\n"
    root = make_fixture_tree({"obs/events.py": GOOD_EVENTS, "runtime/worker.py": sites})
    findings = run_passes(root, rules=["trace"])
    assert len(findings) == 1
    assert "computed kind" in findings[0].message


def test_positional_fields_are_flagged(make_fixture_tree):
    sites = GOOD_SITES + '\n\ndef sloppy(recorder, t):\n    recorder.emit(t, "mark", 0, "label-value")\n'
    root = make_fixture_tree({"obs/events.py": GOOD_EVENTS, "runtime/worker.py": sites})
    findings = run_passes(root, rules=["trace"])
    assert len(findings) == 1
    assert "must be keywords" in findings[0].message


def test_undocumented_registry_entry_is_flagged(make_fixture_tree):
    events = GOOD_EVENTS.replace('doc="A freeform annotation.",\n        ', 'doc="",\n        ')
    root = make_fixture_tree({"obs/events.py": events, "runtime/worker.py": GOOD_SITES})
    findings = run_passes(root, rules=["trace"])
    assert len(findings) == 1
    assert "'mark'" in findings[0].message and "no literal doc" in findings[0].message


def test_name_key_mismatch_is_flagged(make_fixture_tree):
    events = GOOD_EVENTS.replace('name="mark",', 'name="remark",')
    root = make_fixture_tree({"obs/events.py": events, "runtime/worker.py": GOOD_SITES})
    findings = run_passes(root, rules=["trace"])
    assert len(findings) == 1
    assert "key and EventKind.name must agree" in findings[0].message


def test_non_literal_fields_tuple_is_flagged(make_fixture_tree):
    events = GOOD_EVENTS.replace('fields=("label",),', "fields=MARK_FIELDS,")
    root = make_fixture_tree({"obs/events.py": events, "runtime/worker.py": GOOD_SITES})
    findings = run_passes(root, rules=["trace"])
    # the bad registry entry plus the now-uncheckable-but-registered site
    # stays a single registry finding: the emit site still names "mark"
    assert any("tuple of string literals" in f.message for f in findings)
    assert all(f.path == "obs/events.py" for f in findings)


def test_duplicate_fields_are_flagged(make_fixture_tree):
    events = GOOD_EVENTS.replace('fields=("phase", "dur_ms"),', 'fields=("phase", "phase"),')
    root = make_fixture_tree({"obs/events.py": events, "runtime/worker.py": GOOD_SITES})
    findings = run_passes(root, rules=["trace"])
    assert any("duplicate fields" in f.message for f in findings)


def test_splat_fields_are_skipped(make_fixture_tree):
    sites = GOOD_SITES + '\n\ndef relay(recorder, t, fields):\n    recorder.emit(t, "mark", **fields)\n'
    root = make_fixture_tree({"obs/events.py": GOOD_EVENTS, "runtime/worker.py": sites})
    assert run_passes(root, rules=["trace"]) == []


def test_real_package_is_clean():
    from pathlib import Path

    import repro

    root = Path(repro.__file__).resolve().parent
    assert run_passes(root, rules=["trace"]) == []
