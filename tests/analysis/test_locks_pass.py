"""lock-discipline pass: guarded-by enforcement and the static order graph."""

from __future__ import annotations

from repro.analysis import run_passes

GUARDED_CLASS = """\
import threading
from collections import deque


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = deque()  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    def put(self, item):
        with self._lock:
            self._items.append(item)
            self._count += 1

    def snapshot(self):
        with self._lock:
            return list(self._items)
"""


def test_clean_guarded_class(make_fixture_tree):
    root = make_fixture_tree({"runtime/box.py": GUARDED_CLASS})
    assert run_passes(root, rules=["locks"]) == []


def test_unguarded_write_flagged(make_fixture_tree):
    bad = GUARDED_CLASS + "\n    def sneak(self, item):\n        self._items.append(item)\n"
    root = make_fixture_tree({"runtime/box.py": bad})
    findings = run_passes(root, rules=["locks"])
    assert len(findings) == 1
    assert "write to self._items outside 'with self._lock'" in findings[0].message


def test_unguarded_assignment_and_del_flagged(make_fixture_tree):
    bad = (
        GUARDED_CLASS
        + "\n    def clobber(self):\n        self._count = 0\n        del self._items\n"
    )
    root = make_fixture_tree({"runtime/box.py": bad})
    findings = run_passes(root, rules=["locks"])
    assert len(findings) == 2


def test_init_is_exempt(make_fixture_tree):
    # GUARDED_CLASS's __init__ assigns the guarded attrs without the lock
    root = make_fixture_tree({"runtime/box.py": GUARDED_CLASS})
    assert run_passes(root, rules=["locks"]) == []


def test_nested_function_does_not_inherit_held_locks(make_fixture_tree):
    bad = (
        GUARDED_CLASS
        + "\n    def deferred(self):\n"
        + "        with self._lock:\n"
        + "            def flush():\n"
        + "                self._items.clear()\n"
        + "            return flush\n"
    )
    root = make_fixture_tree({"runtime/box.py": bad})
    findings = run_passes(root, rules=["locks"])
    assert len(findings) == 1
    assert "self._items" in findings[0].message


def test_reads_are_not_flagged(make_fixture_tree):
    ok = GUARDED_CLASS + "\n    def peek(self):\n        return len(self._items)\n"
    root = make_fixture_tree({"runtime/box.py": ok})
    assert run_passes(root, rules=["locks"]) == []


def test_static_lock_order_cycle_flagged(make_fixture_tree):
    root = make_fixture_tree(
        {
            "runtime/ab.py": """\
            class Pair:
                def forward(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass

                def backward(self):
                    with self.b_lock:
                        with self.a_lock:
                            pass
            """
        }
    )
    findings = run_passes(root, rules=["locks"])
    assert len(findings) == 1
    assert "static lock acquisition cycle" in findings[0].message
    assert "Pair.a_lock" in findings[0].message and "Pair.b_lock" in findings[0].message


def test_consistent_lock_order_is_fine(make_fixture_tree):
    root = make_fixture_tree(
        {
            "runtime/ab.py": """\
            class Pair:
                def forward(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass

                def again(self):
                    with self.a_lock:
                        with self.b_lock:
                            pass
            """
        }
    )
    assert run_passes(root, rules=["locks"]) == []


def test_cross_file_cycle_flagged(make_fixture_tree):
    # non-self attributes are identified by bare attribute name, so the
    # inverted nesting in another module closes the cycle
    root = make_fixture_tree(
        {
            "runtime/x.py": """\
            def f(a, b):
                with a.first_lock:
                    with b.second_lock:
                        pass
            """,
            "runtime/y.py": """\
            def g(a, b):
                with b.second_lock:
                    with a.first_lock:
                        pass
            """,
        }
    )
    findings = run_passes(root, rules=["locks"])
    assert len(findings) == 1
    assert "cycle" in findings[0].message
