"""Framework tests: Finding, suppressions, the pass registry, run_passes."""

from __future__ import annotations

import pytest

from repro.analysis import Finding, available_rules, run_passes
from repro.analysis.base import SourceTree

BUILTIN_RULES = ("determinism", "locks", "registry", "wire")


def test_finding_str_and_fingerprint():
    f = Finding("wire", "runtime/messages.py", 12, "no codec")
    assert str(f) == "runtime/messages.py:12: error [wire] no codec"
    assert f.location == "runtime/messages.py:12"
    assert f.fingerprint == "wire::runtime/messages.py::no codec"
    # fingerprints ignore line numbers so baselines survive unrelated edits
    assert Finding("wire", "runtime/messages.py", 99, "no codec").fingerprint == f.fingerprint


def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError):
        Finding("wire", "a.py", 1, "x", severity="fatal")


def test_available_rules_contains_builtins():
    rules = available_rules()
    for rule in BUILTIN_RULES:
        assert rule in rules


def test_source_tree_reports_parse_failures(make_fixture_tree):
    root = make_fixture_tree({"broken.py": "def oops(:\n", "fine.py": "x = 1\n"})
    tree = SourceTree(root)
    assert [f.rel for f in tree.files] == ["fine.py"]
    assert len(tree.parse_failures) == 1
    assert tree.parse_failures[0].rule == "parse"
    assert tree.parse_failures[0].path == "broken.py"


def test_inline_suppression_same_line_and_line_above(make_fixture_tree):
    root = make_fixture_tree(
        {
            "core/a.py": """\
            import numpy as np

            r1 = np.random.default_rng()  # lint-ok: determinism
            # lint-ok: determinism
            r2 = np.random.default_rng()
            r3 = np.random.default_rng()
            """
        }
    )
    findings = run_passes(root, rules=["determinism"])
    assert len(findings) == 1
    assert findings[0].line == 6


def test_run_passes_rule_filter(make_fixture_tree):
    root = make_fixture_tree({"core/a.py": "import numpy as np\nr = np.random.default_rng()\n"})
    assert run_passes(root, rules=["wire"]) == []
    assert len(run_passes(root, rules=["determinism"])) == 1


def test_run_passes_sorted_by_location(make_fixture_tree):
    root = make_fixture_tree(
        {
            "core/b.py": "import random\n",
            "core/a.py": "import random\nimport numpy as np\nr = np.random.default_rng()\n",
        }
    )
    findings = run_passes(root, rules=["determinism"])
    assert [f.path for f in findings] == ["core/a.py", "core/a.py", "core/b.py"]
    assert findings[0].line <= findings[1].line
