"""Runtime lock-order tracer: factories, recording, cycle detection."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockorder
from repro.analysis.lockorder import (
    LOCK_TRACE_ENV,
    LockOrderViolation,
    TracedLock,
    make_condition,
    make_lock,
)


@pytest.fixture(autouse=True)
def _clean_recorder():
    lockorder.reset()
    yield
    lockorder.reset()


def test_factories_return_plain_primitives_when_tracing_off(monkeypatch):
    monkeypatch.delenv(LOCK_TRACE_ENV, raising=False)
    assert isinstance(make_lock("X.l"), type(threading.Lock()))
    assert isinstance(make_condition("X.c"), threading.Condition)
    assert not lockorder.trace_enabled()


def test_factories_return_traced_wrappers_when_tracing_on(monkeypatch):
    monkeypatch.setenv(LOCK_TRACE_ENV, "1")
    assert lockorder.trace_enabled()
    lock = make_lock("X.l")
    assert isinstance(lock, TracedLock)
    cond = make_condition("X.c")
    assert isinstance(cond, threading.Condition)
    with cond:
        pass  # Condition acquire/release routes through the wrapper
    assert lockorder.edges() == {}  # single lock held alone: no edges


def test_consistent_order_is_acyclic(monkeypatch):
    monkeypatch.setenv(LOCK_TRACE_ENV, "1")
    a, b = make_lock("A"), make_lock("B")
    for _ in range(3):
        with a:
            with b:
                pass
    assert list(lockorder.edges()) == [("A", "B")]
    assert lockorder.find_cycle() is None
    lockorder.assert_acyclic()


def test_inverted_order_is_a_cycle(monkeypatch):
    monkeypatch.setenv(LOCK_TRACE_ENV, "1")
    a, b = make_lock("A"), make_lock("B")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    cycle = lockorder.find_cycle()
    assert cycle is not None and cycle[0] == cycle[-1]
    assert set(cycle) == {"A", "B"}
    with pytest.raises(LockOrderViolation, match="lock acquisition cycle"):
        lockorder.assert_acyclic()


def test_three_lock_cycle_across_threads(monkeypatch):
    monkeypatch.setenv(LOCK_TRACE_ENV, "1")
    a, b, c = make_lock("A"), make_lock("B"), make_lock("C")

    def nest(outer, inner):
        with outer:
            with inner:
                pass

    threads = [
        threading.Thread(target=nest, args=pair)
        for pair in ((a, b), (b, c), (c, a))
    ]
    # run serially on real threads: each edge is recorded by its own thread
    for t in threads:
        t.start()
        t.join()
    with pytest.raises(LockOrderViolation):
        lockorder.assert_acyclic()


def test_out_of_order_release_keeps_stack_sane(monkeypatch):
    monkeypatch.setenv(LOCK_TRACE_ENV, "1")
    a, b = make_lock("A"), make_lock("B")
    a.acquire()
    b.acquire()
    a.release()  # hand-over-hand: A released while B still held
    c = make_lock("C")
    c.acquire()  # held stack is [B] -> edge B->C only
    b.release()
    c.release()
    assert set(lockorder.edges()) == {("A", "B"), ("B", "C")}
    lockorder.assert_acyclic()


def test_reset_clears_edges(monkeypatch):
    monkeypatch.setenv(LOCK_TRACE_ENV, "1")
    a, b = make_lock("A"), make_lock("B")
    with a, b:
        pass
    assert lockorder.edges()
    lockorder.reset()
    assert lockorder.edges() == {}


def test_traced_lock_nonblocking_acquire(monkeypatch):
    monkeypatch.setenv(LOCK_TRACE_ENV, "1")
    lock = make_lock("A")
    assert lock.acquire(blocking=False)
    assert lock.locked()
    assert not lock.acquire(blocking=False)
    lock.release()
    assert not lock.locked()
