"""Datasets, loaders, splits and synthetic generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ArrayDataset,
    BatchSampler,
    DataLoader,
    SyntheticCIFAR10,
    SyntheticImageNet,
    make_image_classification,
    make_regression_series,
    make_spirals,
    train_test_split,
)


class TestArrayDataset:
    def test_len_and_indexing(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 3)), np.arange(10))
        assert len(ds) == 10
        x, y = ds[3]
        assert x.shape == (3,) and y == 3
        xs, ys = ds[np.array([1, 4])]
        assert xs.shape == (2, 3)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.standard_normal((10, 3)), np.arange(9))

    def test_subset(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 3)), np.arange(10))
        sub = ds.subset(np.array([0, 5]))
        assert len(sub) == 2
        assert sub.targets.tolist() == [0, 5]

    def test_input_shape(self, rng):
        ds = ArrayDataset(rng.standard_normal((4, 3, 2, 2)), np.zeros(4))
        assert ds.input_shape == (3, 2, 2)


class TestSplit:
    def test_split_sizes(self, rng):
        ds = ArrayDataset(rng.standard_normal((100, 2)), np.zeros(100))
        train, test = train_test_split(ds, test_fraction=0.25, seed=0)
        assert len(train) == 75 and len(test) == 25

    def test_split_disjoint(self, rng):
        data = np.arange(50).reshape(50, 1).astype(float)
        ds = ArrayDataset(data, np.zeros(50))
        train, test = train_test_split(ds, seed=1)
        union = set(train.inputs[:, 0]) | set(test.inputs[:, 0])
        assert len(union) == 50

    def test_split_validation(self, rng):
        ds = ArrayDataset(rng.standard_normal((10, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=0.0)


class TestSampler:
    def test_covers_epoch(self):
        sampler = BatchSampler(10, 3, shuffle=True, seed=0)
        seen = np.concatenate([sampler.next_batch() for _ in range(4)])
        assert sorted(seen.tolist()) == list(range(10))

    def test_drop_last(self):
        sampler = BatchSampler(10, 3, shuffle=False, drop_last=True, seed=0)
        assert sampler.batches_per_epoch() == 3
        for _ in range(6):
            assert len(sampler.next_batch()) == 3

    def test_batch_larger_than_dataset_clamped(self):
        sampler = BatchSampler(5, 100, seed=0)
        assert sampler.batch_size == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchSampler(0, 3)
        with pytest.raises(ValueError):
            BatchSampler(5, 0)

    def test_deterministic_given_seed(self):
        a = BatchSampler(20, 5, seed=3)
        b = BatchSampler(20, 5, seed=3)
        for _ in range(8):
            np.testing.assert_array_equal(a.next_batch(), b.next_batch())


class TestLoader:
    def test_iteration(self, rng):
        ds = ArrayDataset(rng.standard_normal((20, 2)), np.arange(20))
        loader = DataLoader(ds, 6, seed=0)
        batches = list(loader)
        assert len(batches) == len(loader) == 4
        assert sum(len(y) for _, y in batches) == 20

    def test_next_batch_stream(self, rng):
        ds = ArrayDataset(rng.standard_normal((8, 2)), np.arange(8))
        loader = DataLoader(ds, 4, seed=0)
        for _ in range(10):
            x, y = loader.next_batch()
            assert x.shape[0] == 4


class TestSynthetic:
    def test_cifar_shapes(self):
        ds = SyntheticCIFAR10(train_size=128, test_size=32, side=8, seed=0)
        assert ds.train.inputs.shape == (128, 3, 8, 8)
        assert ds.test.inputs.shape == (32, 3, 8, 8)
        assert ds.input_shape == (3, 8, 8)
        assert set(np.unique(ds.train.targets)) <= set(range(10))

    def test_imagenet_shapes(self):
        ds = SyntheticImageNet(train_size=108, test_size=27, side=12, seed=0)
        assert ds.train.inputs.shape == (108, 3, 12, 12)
        assert ds.num_classes == 27  # paper's 27 high-level categories

    def test_deterministic(self):
        a = SyntheticCIFAR10(train_size=64, test_size=16, seed=5)
        b = SyntheticCIFAR10(train_size=64, test_size=16, seed=5)
        np.testing.assert_array_equal(a.train.inputs, b.train.inputs)

    def test_different_seeds_differ(self):
        a = SyntheticCIFAR10(train_size=64, test_size=16, seed=5)
        b = SyntheticCIFAR10(train_size=64, test_size=16, seed=6)
        assert not np.array_equal(a.train.inputs, b.train.inputs)

    def test_standardized(self):
        ds = SyntheticCIFAR10(train_size=512, test_size=128, seed=0)
        all_px = np.concatenate([ds.train.inputs.ravel(), ds.test.inputs.ravel()])
        assert abs(all_px.mean()) < 0.05
        assert abs(all_px.std() - 1.0) < 0.05

    def test_learnable_but_not_trivial(self):
        """A linear probe should beat chance but not saturate: the task has
        class structure (learnable) plus overlap (noise floor)."""
        ds = SyntheticCIFAR10(train_size=1024, test_size=512, noise=1.2, seed=0)
        x = ds.train.inputs.reshape(len(ds.train), -1)
        y = ds.train.targets
        xt = ds.test.inputs.reshape(len(ds.test), -1)
        # closed-form ridge regression on one-hot targets
        onehot = np.eye(10)[y]
        w = np.linalg.solve(x.T @ x + 10.0 * np.eye(x.shape[1]), x.T @ onehot)
        acc = (xt @ w).argmax(1).__eq__(ds.test.targets).mean()
        assert 0.3 < acc < 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            make_image_classification(5, 10)
        with pytest.raises(ValueError):
            make_image_classification(100, 1)
        with pytest.raises(ValueError):
            make_image_classification(100, 10, side=1)

    def test_spirals(self):
        ds = make_spirals(num_samples=300, num_classes=3, seed=0)
        assert ds.inputs.shape[1] == 2
        assert set(np.unique(ds.targets)) == {0, 1, 2}
        with pytest.raises(ValueError):
            make_spirals(num_classes=1)

    def test_regression_series_kinds(self):
        for kind in ("decay", "step", "noisy"):
            series = make_regression_series(128, kind=kind, seed=0)
            assert series.shape == (128,)
            assert series[0] > series[-1]  # loss-like: decreasing overall
        with pytest.raises(ValueError):
            make_regression_series(128, kind="bogus")
        with pytest.raises(ValueError):
            make_regression_series(1)


class TestPartition:
    def test_partition_complete_and_disjoint(self):
        from repro.data import partition_indices

        parts = partition_indices(20, 3, seed=0)
        combined = np.concatenate(parts)
        assert sorted(combined.tolist()) == list(range(20))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_dataset(self, rng):
        from repro.data import shard_dataset

        ds = ArrayDataset(rng.standard_normal((10, 2)), np.arange(10))
        shards = shard_dataset(ds, 3, seed=0)
        assert sum(len(s) for s in shards) == 10

    def test_partition_validation(self):
        from repro.data import partition_indices

        with pytest.raises(ValueError):
            partition_indices(3, 5)
        with pytest.raises(ValueError):
            partition_indices(0, 1)
        with pytest.raises(ValueError):
            partition_indices(5, 0)

    @given(st.integers(1, 100), st.integers(1, 10), st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, n, k, seed):
        from repro.data import partition_indices

        if k > n:
            return
        parts = partition_indices(n, k, seed=seed)
        combined = sorted(np.concatenate(parts).tolist())
        assert combined == list(range(n))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1
