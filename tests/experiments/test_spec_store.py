"""ExperimentSpec keys and the content-addressed ResultStore."""

import json

import pytest

from repro.core.config import ClusterConfig, TrainingConfig
from repro.core.metrics import CurvePoint, RunResult
from repro.experiments import ExperimentSpec, ResultStore, format_summary


def tiny_spec(**overrides) -> ExperimentSpec:
    seed = overrides.pop("seed", 0)
    return ExperimentSpec(TrainingConfig.tiny(seed=seed, **overrides))


def fake_result(algorithm="asgd", seed=0, test_error=0.25) -> RunResult:
    return RunResult(
        algorithm=algorithm,
        num_workers=2,
        bn_mode="async",
        curve=[CurvePoint(epoch=1, time=1.5, train_error=0.3,
                          train_loss=1.1, test_error=test_error, test_loss=1.2)],
        staleness={"mean": 1.0, "max": 3.0},
        loss_prediction_pairs=[(0.5, 0.6)],
        step_prediction_pairs=[(1, 2)],
        finishing_order=[0, 1],
        timers={"loss_pred_ms": 0.1},
        total_updates=24,
        total_virtual_time=3.0,
        seed=seed,
        backend="sim",
        wall_time=0.4,
    )


class TestSpecKey:
    def test_key_is_deterministic_across_instances(self):
        # two independently built but identical specs: identical keys —
        # the property multi-seed campaign resume rests on
        assert tiny_spec(seed=3).key() == tiny_spec(seed=3).key()

    def test_each_seed_gets_its_own_key(self):
        keys = {tiny_spec(seed=s).key() for s in range(5)}
        assert len(keys) == 5

    def test_config_backend_and_options_feed_the_key(self):
        base = tiny_spec()
        assert base.key() != tiny_spec(num_workers=4).key()
        assert base.key() != ExperimentSpec(base.config, backend="thread").key()
        assert (
            base.key()
            != ExperimentSpec(base.config, backend_options={"deterministic": True}).key()
        )
        cluster = ClusterConfig(mean_batch_time=0.5)
        assert base.key() != tiny_spec(cluster=cluster).key()

    def test_tags_do_not_affect_the_key(self):
        assert tiny_spec().key() == tiny_spec().with_tags("a", "b").key()

    def test_to_dict_round_trips_through_json(self):
        payload = tiny_spec().with_tags("sweep").to_dict()
        restored = json.loads(json.dumps(payload))
        assert restored["key"] == payload["key"]
        assert restored["tags"] == ["sweep"]
        assert restored["config"]["algorithm"] == "asgd"

    def test_label_is_human_readable(self):
        assert tiny_spec(seed=3).label() == "asgd@M2 seed=3 [sim]"


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec, result = tiny_spec(), fake_result()
        assert store.get(spec) is None and spec not in store
        path = store.put(spec, result)
        assert path.name == f"{spec.key()}.json"
        assert spec in store and len(store) == 1
        loaded = store.get(spec)
        assert loaded.final_test_error == result.final_test_error
        assert loaded.curve[0] == result.curve[0]
        assert loaded.loss_prediction_pairs == [(0.5, 0.6)]
        assert loaded.staleness == result.staleness

    def test_record_keeps_spec_document(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec().with_tags("smoke")
        store.put(spec, fake_result())
        record = store.load(spec.key())
        assert record.spec["key"] == spec.key()
        assert record.spec["tags"] == ["smoke"]
        assert record.spec["config"]["seed"] == 0

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError, match="deadbeef"):
            ResultStore(tmp_path).load("deadbeef")

    def test_no_tmp_droppings_after_put(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(tiny_spec(), fake_result())
        assert not list(store.root.glob("*.tmp"))

    def test_init_sweeps_stale_tmp_files(self, tmp_path):
        # a SIGKILL between mkstemp and os.replace strands a .tmp file;
        # reopening the store must collect it without touching records
        import os
        import time

        store = ResultStore(tmp_path)
        store.put(tiny_spec(), fake_result())
        orphan = tmp_path / "tmpabc123.tmp"
        orphan.write_text("half-written")
        old = time.time() - 7200
        os.utime(orphan, (old, old))  # orphans are old; live writers are ms
        reopened = ResultStore(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        assert len(reopened) == 1  # the completed record survived

    def test_init_leaves_fresh_tmp_files_alone(self, tmp_path):
        # a just-written .tmp may belong to a concurrent writer mid-put:
        # deleting it would crash that writer's os.replace
        ResultStore(tmp_path)
        inflight = tmp_path / "tmplive.tmp"
        inflight.write_text("concurrent writer")
        ResultStore(tmp_path)
        assert inflight.exists()

    def test_summarize_results_rejects_mismatched_scenarios(self):
        from repro.experiments.store import summarize_results

        with pytest.raises(ValueError, match="parallel"):
            summarize_results([fake_result()], scenarios=["a", "b"])

    def test_summarize_groups_and_averages_seeds(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(tiny_spec(seed=0), fake_result(seed=0, test_error=0.2))
        store.put(tiny_spec(seed=1), fake_result(seed=1, test_error=0.4))
        rows = store.summarize()
        assert len(rows) == 1
        row = rows[0]
        assert row["algorithm"] == "asgd"
        assert row["runs"] == 2
        assert row["seeds"] == [0, 1]
        assert row["final_test_error"] == pytest.approx(0.3)
        assert format_summary(rows).count("\n") >= 2

    def test_summarize_separates_scenarios(self, tmp_path):
        # two campaigns (different epoch budgets) sharing one store must
        # not average into a single row
        store = ResultStore(tmp_path)
        store.put(tiny_spec(seed=0), fake_result(test_error=0.2))
        store.put(tiny_spec(seed=0, epochs=5), fake_result(test_error=0.6))
        rows = store.summarize()
        assert len(rows) == 2
        assert {r["scenario"] for r in rows} == {"cifar/mlp/e3", "cifar/mlp/e5"}
        assert "scenario" in format_summary(rows)  # column shown when mixed

    def test_format_summary_empty(self):
        assert "no runs" in format_summary([])
