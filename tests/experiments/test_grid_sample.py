"""Grid.sample: deterministic subsampling that composes with guards and *."""

import pytest

from repro.experiments import Grid, Sweep


def big_grid() -> Grid:
    return (
        Sweep("algorithm", ["asgd", "lc-asgd", "ad-psgd"])
        * Sweep("num_workers", [2, 4])
        * Sweep("seed", [0, 1, 2, 3, 4, 5])
    )


def test_sample_is_deterministic_per_seed():
    grid = big_grid()
    a = grid.sample(6, method="random", seed=3).points()
    b = grid.sample(6, method="random", seed=3).points()
    assert a == b
    assert len(a) == 6
    # a different seed draws a different subset of the 36 points
    assert a != grid.sample(6, method="random", seed=4).points()


def test_sampled_points_are_real_grid_points():
    grid = big_grid()
    full = grid.points()
    for method in ("random", "lhs"):
        for point in grid.sample(8, method=method, seed=1).points():
            assert point in full


def test_sample_caps_at_grid_size():
    grid = Grid(seed=[0, 1, 2])
    assert len(grid.sample(99).points()) == 3
    assert grid.sample(99).points() == grid.points()


def test_sample_validates_arguments():
    grid = Grid(seed=[0, 1])
    with pytest.raises(ValueError, match="sample size"):
        grid.sample(0)
    with pytest.raises(ValueError, match="method"):
        grid.sample(1, method="sobol")
    with pytest.raises(ValueError, match="empty grid"):
        grid.when(lambda p: False).sample(1)


def test_lhs_stratifies_every_axis():
    grid = Sweep("algorithm", ["asgd", "lc-asgd", "ad-psgd"]) * Sweep(
        "seed", [0, 1, 2, 3, 4, 5]
    )
    points = grid.sample(6, method="lhs", seed=0).points()
    # six stratified draws over three algorithms: all of them show up
    # (a uniform draw of six could easily miss one)
    assert {p["algorithm"] for p in points} == {"asgd", "lc-asgd", "ad-psgd"}


def test_sample_respects_axis_guards():
    grid = Sweep("algorithm", ["asgd", "lc-asgd"]) * Sweep(
        "lc_lambda", [0.3, 0.5, 0.7], when=lambda p: p["algorithm"] == "lc-asgd"
    )
    for method in ("random", "lhs"):
        for point in grid.sample(3, method=method, seed=2).points():
            if point["algorithm"] == "asgd":
                assert "lc_lambda" not in point
            else:
                assert point["lc_lambda"] in (0.3, 0.5, 0.7)


def test_sample_survives_multiplication_by_new_axis():
    sampled = big_grid().sample(5, method="random", seed=7)
    base_points = sampled.points()
    expanded = sampled * Sweep("topology", ["ring", "bipartite"])
    points = expanded.points()
    # every sampled point expands across the new axis, nothing else leaks in
    assert len(points) == 2 * len(base_points)
    for base in base_points:
        for topology in ("ring", "bipartite"):
            assert {**base, "topology": topology} in points
