"""Dataset/model registries: guarded registration and named scenarios."""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.data.registry import DATASETS, build_dataset, dataset_names, register_dataset
from repro.nn.registry import MODELS, build_model, model_names, register_model
from repro.utils.registry import Registry


class TestGenericRegistry:
    def test_register_get_names(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.register("b", 2)
        assert reg.names() == ("a", "b")
        assert reg.get("a") == 1
        assert "a" in reg and "c" not in reg
        assert len(reg) == 2

    def test_duplicate_raises_unless_override(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        reg.register("a", 2, override=True)
        assert reg.get("a") == 2

    def test_empty_name_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            Registry("thing").register("", 1)

    def test_unknown_name_lists_available(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="unknown thing 'x'.*a"):
            reg.get("x")

    def test_unregister(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(ValueError, match="not registered"):
            reg.unregister("a")


class TestDatasetRegistry:
    def test_builtin_names(self):
        assert set(dataset_names()) >= {"cifar", "imagenet", "spirals"}

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_dataset("cifar", DATASETS.get("cifar"))
        # deliberate override restores the same builder
        register_dataset("cifar", DATASETS.get("cifar"), override=True)

    def test_spirals_is_a_named_scenario(self):
        cfg = TrainingConfig.spirals(algorithm="asgd", num_workers=2)
        train, test, num_classes = build_dataset(cfg)
        assert train.input_shape == (2,)
        assert num_classes == 3
        assert len(train) > 0 and len(test) > 0

    def test_custom_dataset_plugs_in(self):
        def build_custom(config):
            return build_dataset(config.with_overrides(dataset="spirals"))

        register_dataset("custom-spirals", build_custom)
        try:
            cfg = TrainingConfig.spirals(num_workers=2).with_overrides(
                dataset="custom-spirals"
            )
            train, _, _ = build_dataset(cfg)
            assert len(train) > 0
        finally:
            DATASETS.unregister("custom-spirals")


class TestModelRegistry:
    def test_builtin_names(self):
        assert set(model_names()) >= {"mlp", "resnet18", "resnet50", "resnet_tiny"}

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_model("mlp", MODELS.get("mlp"))

    def test_resnet_tiny_is_a_named_scenario(self):
        cfg = TrainingConfig.tiny(model="resnet_tiny", model_kwargs={})
        model = build_model(cfg, input_shape=(3, 6, 6), num_classes=10)
        logits = model(_as_tensor(np.zeros((2, 3, 6, 6), dtype=np.float32)))
        assert logits.data.shape == (2, 10)

    def test_same_config_builds_identical_replicas(self):
        from repro.nn.module import get_flat_params

        cfg = TrainingConfig.tiny()
        a = build_model(cfg, (3, 6, 6), 10)
        b = build_model(cfg, (3, 6, 6), 10)
        np.testing.assert_array_equal(get_flat_params(a), get_flat_params(b))


def _as_tensor(arr):
    from repro.tensor.tensor import Tensor

    return Tensor(arr)
