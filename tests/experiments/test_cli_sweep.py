"""CLI smoke tests for the new sweep/report subcommands."""

import json

from repro.cli import main as cli_main


def test_sweep_smoke_on_tiny(tmp_path, capsys):
    store_dir = tmp_path / "out"
    code = cli_main([
        "sweep", "--preset", "tiny", "--algorithms", "sgd,asgd",
        "--workers", "2,4", "--seeds", "2", "--epochs", "1",
        "--seed", "0", "--json", str(store_dir),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "campaign:" in out
    assert "store:" in out

    # one JSON per run, keyed by spec hash; sgd deduped across worker counts
    records = sorted(store_dir.glob("*.json"))
    assert len(records) == 6  # 2 sgd (M collapses to 1) + 4 asgd
    payload = json.loads(records[0].read_text())
    assert payload["spec"]["key"] == records[0].stem
    assert "result" in payload


def test_sweep_resumes_from_store(tmp_path, capsys):
    store_dir = str(tmp_path / "out")
    argv = [
        "sweep", "--preset", "tiny", "--algorithms", "asgd",
        "--workers", "2", "--seeds", "2", "--epochs", "1", "--json", store_dir,
    ]
    assert cli_main(argv) == 0
    first = capsys.readouterr().out
    assert "running" in first

    assert cli_main(argv) == 0
    second = capsys.readouterr().out
    assert "running" not in second  # everything cached
    assert "cached" in second


def test_report_reads_store(tmp_path, capsys):
    store_dir = str(tmp_path / "out")
    cli_main([
        "sweep", "--preset", "tiny", "--algorithms", "asgd",
        "--workers", "2", "--seeds", "1", "--epochs", "1", "--json", store_dir,
    ])
    capsys.readouterr()

    rows_path = tmp_path / "rows.json"
    assert cli_main(["report", store_dir, "--json", str(rows_path)]) == 0
    out = capsys.readouterr().out
    assert "algorithm" in out and "asgd" in out
    rows = json.loads(rows_path.read_text())
    assert rows[0]["algorithm"] == "asgd"
    assert rows[0]["num_workers"] == 2


def test_sweep_rejects_unknown_algorithm(tmp_path):
    import pytest

    with pytest.raises(SystemExit, match="bogus"):
        cli_main(["sweep", "--algorithms", "bogus", "--workers", "2"])


def test_sweep_through_proc_backend_persists_and_resumes(tmp_path, capsys):
    """The acceptance path: a proc-backend grid lands in a ResultStore and a
    rerun resolves entirely from it (real worker processes both times)."""
    store_dir = str(tmp_path / "out")
    argv = [
        "sweep", "--preset", "spirals", "--backend", "proc",
        "--algorithms", "asgd,lc-asgd", "--workers", "2", "--seeds", "1",
        "--epochs", "1", "--json", store_dir,
    ]
    assert cli_main(argv) == 0
    first = capsys.readouterr().out
    assert "running" in first and "[proc]" in first

    assert cli_main(argv) == 0
    second = capsys.readouterr().out
    assert "running" not in second  # resumed: everything cached
    assert "cached" in second

    import json
    from pathlib import Path

    records = sorted(Path(store_dir).glob("*.json"))
    assert len(records) == 2
    assert all(json.loads(p.read_text())["spec"]["backend"] == "proc" for p in records)


def test_sweep_through_fleet_agents(tmp_path, capsys):
    """`sweep --agents host:port,host:port` runs the grid on fleet daemons
    and lands in the same resumable store as any other executor."""
    from repro.fleet import FleetAgent

    agents = [FleetAgent(port=0, slots=1).start(), FleetAgent(port=0, slots=1).start()]
    roster = ",".join(f"{h}:{p}" for h, p in (a.address for a in agents))
    store_dir = str(tmp_path / "out")
    argv = [
        "sweep", "--preset", "spirals", "--algorithms", "asgd",
        "--workers", "2", "--seeds", "2", "--epochs", "1", "--seed", "0",
        "--agents", roster, "--json", store_dir,
    ]
    try:
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "fleet:" in out and "running" in out

        assert cli_main(argv) == 0  # resumes entirely from the store
        assert "running" not in capsys.readouterr().out
    finally:
        for agent in agents:
            agent.close()
    records = sorted(__import__("pathlib").Path(store_dir).glob("*.json"))
    assert len(records) == 2


def test_sweep_codec_axis_runs_dcasgd_ablation_on_one_grid(tmp_path, capsys):
    """The compression ablation the redesign exists for: dc-asgd crossed
    with every codec on a single grid, with per-codec wire bytes in the
    report coming from the unified CommStats keys."""
    store_dir = str(tmp_path / "out")
    argv = [
        "sweep", "--preset", "tiny", "--backend", "thread",
        "--algorithms", "dc-asgd", "--workers", "2", "--seeds", "1",
        "--epochs", "1", "--comm-codec", "raw32,fp16,topk",
        "--json", store_dir,
    ]
    assert cli_main(argv) == 0
    capsys.readouterr()

    records = sorted(__import__("pathlib").Path(store_dir).glob("*.json"))
    assert len(records) == 3  # one cell per codec, same grid
    codecs = sorted(
        json.loads(p.read_text())["spec"]["config"]["comm_codec"] for p in records
    )
    assert codecs == ["fp16", "raw32", "topk"]

    rows_path = tmp_path / "rows.json"
    assert cli_main(["report", store_dir, "--json", str(rows_path)]) == 0
    out = capsys.readouterr().out
    assert "codec" in out and "wire MB" in out
    rows = json.loads(rows_path.read_text())
    by_codec = {row["codec"]: row for row in rows}
    assert set(by_codec) == {"raw32", "fp16", "topk"}
    assert all(row["wire_mb"] > 0 for row in rows)
    # the whole point of the ablation: compression shows up in the report
    assert by_codec["fp16"]["wire_mb"] < by_codec["raw32"]["wire_mb"]
    assert by_codec["topk"]["wire_mb"] < by_codec["raw32"]["wire_mb"]

    # the codec filter narrows like any other axis
    assert cli_main([
        "report", store_dir, "--filter", "codec=fp16", "--json", str(rows_path),
    ]) == 0
    capsys.readouterr()
    assert [row["codec"] for row in json.loads(rows_path.read_text())] == ["fp16"]


def test_sweep_rejects_unknown_codec():
    import pytest

    with pytest.raises(SystemExit, match="gzip"):
        cli_main(["sweep", "--comm-codec", "raw32,gzip", "--workers", "2"])


def test_sweep_rejects_agents_plus_jobs():
    import pytest

    with pytest.raises(SystemExit, match="different parallelism"):
        cli_main(["sweep", "--agents", "127.0.0.1:1", "--jobs", "2"])


def test_report_filter_narrows_rows(tmp_path, capsys):
    store_dir = str(tmp_path / "out")
    cli_main([
        "sweep", "--preset", "tiny", "--algorithms", "sgd,asgd",
        "--workers", "2", "--seeds", "1", "--epochs", "1", "--json", store_dir,
    ])
    capsys.readouterr()

    rows_path = tmp_path / "rows.json"
    assert cli_main([
        "report", store_dir, "--filter", "algo=asgd", "--json", str(rows_path),
    ]) == 0
    rows = json.loads(rows_path.read_text())
    assert [row["algorithm"] for row in rows] == ["asgd"]

    assert cli_main(["report", store_dir, "--filter", "tag=sweep"]) == 0
    assert "sgd" in capsys.readouterr().out  # sweep tag matches everything

    import pytest

    with pytest.raises(SystemExit, match="name=value"):
        cli_main(["report", store_dir, "--filter", "nonsense"])


def test_store_merge_cli(tmp_path, capsys):
    a_dir, b_dir = str(tmp_path / "a"), str(tmp_path / "b")
    for algo, store_dir in (("sgd", a_dir), ("asgd", b_dir)):
        cli_main([
            "sweep", "--preset", "tiny", "--algorithms", algo,
            "--workers", "2", "--seeds", "1", "--epochs", "1", "--json", store_dir,
        ])
    capsys.readouterr()

    dest = str(tmp_path / "merged")
    assert cli_main(["store", "merge", dest, a_dir, b_dir]) == 0
    out = capsys.readouterr().out
    assert "1 copied" in out and "(2 record(s))" in out

    # merging again skips every record (idempotent)
    assert cli_main(["store", "merge", dest, a_dir, b_dir]) == 0
    assert "0 copied" in capsys.readouterr().out

    import pytest

    with pytest.raises(SystemExit, match="no result store"):
        cli_main(["store", "merge", dest, str(tmp_path / "missing")])


def test_deterministic_flag_requires_thread_backend():
    import pytest

    with pytest.raises(SystemExit, match="thread-backend option"):
        cli_main(["run", "--backend", "proc", "--deterministic", "--epochs", "1"])


def test_info_emits_nested_json(capsys):
    assert cli_main(["info", "--algorithm", "lc-asgd", "--workers", "2"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # nested dataclasses serialize as real objects, not Python reprs
    assert isinstance(payload["predictor"], dict)
    assert isinstance(payload["cluster"], dict)
    assert payload["predictor"]["loss_variant"] == "lstm"
    assert payload["cluster"]["mean_batch_time"] > 0


def test_run_spirals_preset(tmp_path, capsys):
    out = tmp_path / "r.json"
    code = cli_main([
        "run", "--preset", "spirals", "--algorithm", "asgd", "--workers", "2",
        "--epochs", "1", "--json", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["algorithm"] == "asgd"
    assert 0.0 <= payload["final_test_error"] <= 1.0
