"""ResultStore.merge + report filters: combining and querying fleet stores."""

import json

import pytest

from repro.core import TrainingConfig
from repro.core.metrics import CurvePoint, RunResult
from repro.experiments import (
    Campaign,
    ResultStore,
    Grid,
    parse_filters,
    record_matches,
)
from repro.experiments.spec import ExperimentSpec


def make_spec(seed=0, algorithm="asgd", tags=()):
    return ExperimentSpec(
        config=TrainingConfig.tiny(algorithm=algorithm, num_workers=2, seed=seed),
        tags=tags,
    )


def make_result(err=0.5, algorithm="asgd"):
    return RunResult(
        algorithm=algorithm,
        num_workers=2,
        bn_mode="async",
        curve=[CurvePoint(1, 1.0, err, 1.0, err, 1.0)],
        staleness={"mean": 1.0},
        backend="sim",
    )


class TestMerge:
    def test_disjoint_stores_combine(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        spec_a, spec_b = make_spec(seed=0), make_spec(seed=1)
        a.put(spec_a, make_result())
        b.put(spec_b, make_result())

        report = a.merge(b)
        assert report.copied == (spec_b.key(),)
        assert report.skipped == () and report.replaced == ()
        assert sorted(a.keys()) == sorted([spec_a.key(), spec_b.key()])
        assert a.get(spec_b.key()) is not None

    def test_key_collision_keeps_existing_by_default(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        spec = make_spec(seed=3)
        a.put(spec, make_result(err=0.25))
        b.put(spec, make_result(err=0.75))  # same key, different content

        report = a.merge(b)
        assert report.skipped == (spec.key(),)
        assert report.copied == ()
        assert a.get(spec).final_test_error == 0.25  # ours survived

    def test_key_collision_overwrite_prefers_source(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        spec = make_spec(seed=3)
        a.put(spec, make_result(err=0.25))
        b.put(spec, make_result(err=0.75))

        report = a.merge(b, overwrite=True)
        assert report.replaced == (spec.key(),)
        assert a.get(spec).final_test_error == 0.75

    def test_corrupt_source_record_fails_before_copying(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        (b.root / "deadbeefdeadbeef.json").write_text("{ truncated")
        with pytest.raises(json.JSONDecodeError):
            a.merge(b)
        assert len(a) == 0  # nothing landed

    def test_merge_is_idempotent(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        b.put(make_spec(seed=5), make_result())
        a.merge(b)
        report = a.merge(b)
        assert report.copied == () and len(report.skipped) == 1

    def test_merged_fleet_stores_summarize_like_one_campaign(self, tmp_path):
        """The fleet workflow: two hosts each ran half a grid; merging their
        stores must summarize exactly like one store that ran it all."""
        specs = Grid(seed=[0, 1, 2, 3]).specs(
            lambda **kw: TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=1, **kw)
        )
        whole = ResultStore(tmp_path / "whole")
        Campaign(specs, store=whole).run()

        half_a = ResultStore(tmp_path / "host-a")
        half_b = ResultStore(tmp_path / "host-b")
        Campaign(specs[:2], store=half_a).run()
        Campaign(specs[2:], store=half_b).run()
        combined = ResultStore(tmp_path / "combined")
        combined.merge(half_a)
        combined.merge(half_b)

        assert combined.keys() == whole.keys()
        assert json.dumps(combined.summarize(), sort_keys=True) == json.dumps(
            whole.summarize(), sort_keys=True
        )


class TestFilters:
    def test_parse_filters(self):
        parsed = parse_filters(["tag=sweep", "algo=lc-asgd", "num_workers=4"])
        assert parsed == {"tag": "sweep", "algorithm": "lc-asgd", "num_workers": "4"}

    def test_parse_filters_topology_alias(self):
        assert parse_filters(["topo=ring"]) == {"topology": "ring"}

    def test_parse_rejects_malformed_and_duplicates(self):
        with pytest.raises(ValueError, match="name=value"):
            parse_filters(["justaname"])
        with pytest.raises(ValueError, match="twice"):
            parse_filters(["algo=a", "algorithm=b"])

    def test_record_matching(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_spec(seed=1, algorithm="asgd", tags=("sweep",)), make_result())
        store.put(
            make_spec(seed=1, algorithm="lc-asgd", tags=("sweep", "night")),
            make_result(algorithm="lc-asgd"),
        )
        records = list(store.records())
        assert sum(record_matches(r, {"algorithm": "lc-asgd"}) for r in records) == 1
        assert sum(record_matches(r, {"tag": "sweep"}) for r in records) == 2
        assert sum(record_matches(r, {"tag": "night"}) for r in records) == 1
        assert sum(record_matches(r, {"backend": "sim"}) for r in records) == 2
        assert sum(record_matches(r, {"num_workers": "2"}) for r in records) == 2
        assert sum(record_matches(r, {"no_such_field": "x"}) for r in records) == 0

    def test_topology_filter_matches_decentralized_runs_only(self, tmp_path):
        # every config carries the topology field (default "ring"), but a
        # parameter-server run never reads it — the filter must not match
        # asgd records just because the default is in their spec document
        store = ResultStore(tmp_path)
        store.put(make_spec(seed=1, algorithm="asgd"), make_result())
        store.put(
            ExperimentSpec(
                config=TrainingConfig.tiny(
                    algorithm="ad-psgd", num_workers=2, topology="ring", seed=1
                )
            ),
            make_result(algorithm="ad-psgd"),
        )
        records = list(store.records())
        matched = [r for r in records if record_matches(r, {"topology": "ring"})]
        assert len(matched) == 1
        assert matched[0].spec["config"]["algorithm"] == "ad-psgd"
        assert sum(record_matches(r, {"topology": "bipartite"}) for r in records) == 0

    def test_summarize_with_filters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_spec(seed=1, algorithm="asgd"), make_result())
        store.put(
            make_spec(seed=1, algorithm="lc-asgd"), make_result(algorithm="lc-asgd")
        )
        rows = store.summarize(filters={"algorithm": "asgd"})
        assert len(rows) == 1 and rows[0]["algorithm"] == "asgd"
        assert len(store.summarize()) == 2
