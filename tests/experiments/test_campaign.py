"""Grid expansion, campaign execution, resume, events, executors."""

import pytest

from repro.core.config import ClusterConfig, TrainingConfig
from repro.experiments import (
    Campaign,
    CampaignEvents,
    ExperimentSpec,
    Grid,
    MultiprocessExecutor,
    ResultStore,
    SerialExecutor,
    Sweep,
    make_executor,
)


def tiny_factory(**kwargs) -> TrainingConfig:
    kwargs.setdefault("max_updates", 4)
    kwargs.setdefault("epochs", 1)
    return TrainingConfig.tiny(**kwargs)


class TestGridExpansion:
    def test_product_counts(self):
        grid = (
            Sweep("algorithm", ["asgd", "lc-asgd"])
            * Sweep("num_workers", [2, 4, 8])
            * Sweep("seed", [0, 1])
        )
        assert len(grid) == 12
        assert len(grid.points()) == 12
        assert len(grid.specs(TrainingConfig.tiny)) == 12

    def test_points_vary_rightmost_fastest(self):
        grid = Sweep("algorithm", ["a", "b"]) * Sweep("seed", [0, 1])
        assert grid.points() == [
            {"algorithm": "a", "seed": 0},
            {"algorithm": "a", "seed": 1},
            {"algorithm": "b", "seed": 0},
            {"algorithm": "b", "seed": 1},
        ]

    def test_kwargs_construction_and_cluster_axis(self):
        clusters = [ClusterConfig(), ClusterConfig(mean_batch_time=0.2)]
        grid = Grid(seed=[0, 1], cluster=clusters)
        specs = grid.specs(TrainingConfig.tiny)
        assert len(specs) == 4
        assert len({s.key() for s in specs}) == 4  # timing models alter identity

    def test_duplicate_axis_raises(self):
        with pytest.raises(ValueError, match="duplicate sweep axis"):
            Sweep("seed", [0]) * Sweep("seed", [1])
        with pytest.raises(ValueError, match="duplicate sweep axis"):
            Grid(seed=[0]) * Grid(seed=[1])

    def test_empty_axis_raises(self):
        with pytest.raises(ValueError, match="no values"):
            Sweep("seed", [])

    def test_base_can_be_concrete_config(self):
        base = TrainingConfig.tiny(algorithm="asgd")
        specs = Grid(seed=[0, 1]).specs(base)
        assert [s.config.seed for s in specs] == [0, 1]
        assert all(s.config.algorithm == "asgd" for s in specs)


class RecordingEvents(CampaignEvents):
    def __init__(self):
        self.started = []
        self.ended = []
        self.points = []
        self.campaign = []

    def on_campaign_start(self, total, cached):
        self.campaign.append((total, cached))

    def on_run_start(self, spec, index, total):
        self.started.append((index, spec.key()))

    def on_curve_point(self, spec, point):
        self.points.append((spec.key(), point.epoch))

    def on_run_end(self, spec, result, cached, index, total):
        self.ended.append((index, spec.key(), cached))


class TestCampaign:
    def test_runs_every_spec_and_fires_events(self):
        specs = Grid(seed=[0, 1]).specs(tiny_factory)
        events = RecordingEvents()
        report = Campaign(specs, events=events).run()
        assert len(report) == 2
        assert len(report.executed) == 2 and not report.cached
        assert events.campaign == [(2, 0)]
        assert [i for i, _ in events.started] == [0, 1]
        assert [(i, cached) for i, _, cached in events.ended] == [(0, False), (1, False)]
        # serial execution streams at least one curve point per run
        assert {key for key, _ in events.points} == {s.key() for s in specs}

    def test_multi_seed_store_keys_are_deterministic(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = Grid(seed=[0, 1, 2]).specs(tiny_factory)
        Campaign(specs, store=store).run()
        # an independently re-expanded grid addresses the exact same files
        again = Grid(seed=[0, 1, 2]).specs(tiny_factory)
        assert sorted(store.keys()) == sorted(s.key() for s in again)

    def test_resume_skips_completed_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = Grid(seed=[0, 1, 2]).specs(tiny_factory)
        first = Campaign(specs, store=store).run()
        assert len(first.executed) == 3

        events = RecordingEvents()
        second = Campaign(specs, store=store, events=events).run()
        assert len(second.executed) == 0
        assert len(second.cached) == 3
        assert events.campaign == [(3, 3)]
        assert not events.started  # nothing reached the executor
        assert all(cached for _, _, cached in events.ended)
        # results match what the first pass computed
        for a, b in zip(first.results, second.results):
            assert a.final_test_error == b.final_test_error

    def test_partial_store_resumes_the_remainder(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = Grid(seed=[0, 1, 2]).specs(tiny_factory)
        Campaign([specs[1]], store=store).run()
        report = Campaign(specs, store=store, events=RecordingEvents()).run()
        assert len(report.cached) == 1
        assert len(report.executed) == 2
        assert report.runs[1].cached  # order preserved: seed=1 is the cached one

    def test_interrupted_campaign_keeps_completed_prefix(self, tmp_path):
        # a campaign killed mid-grid must leave every finished run in the
        # store (executors stream; the Campaign persists per run)
        class ExplodingExecutor(SerialExecutor):
            def run(self, jobs, total, events):
                for n, triple in enumerate(super().run(jobs, total, events)):
                    if n == 2:
                        raise KeyboardInterrupt
                    yield triple

        store = ResultStore(tmp_path)
        specs = Grid(seed=[0, 1, 2, 3]).specs(tiny_factory)
        with pytest.raises(KeyboardInterrupt):
            Campaign(specs, store=store, executor=ExplodingExecutor()).run()
        assert len(store) == 2  # the two completed runs survived

        report = Campaign(specs, store=store).run()  # resume the remainder
        assert len(report.cached) == 2
        assert len(report.executed) == 2

    def test_identical_specs_deduplicate(self):
        # sgd normalizes every worker count to M=1: one run, not three
        specs = Grid(num_workers=[2, 4, 8]).specs(
            lambda **kw: tiny_factory(algorithm="sgd", **kw)
        )
        report = Campaign(specs).run()
        assert len(report) == 1

    def test_empty_specs_raise(self):
        with pytest.raises(ValueError, match="at least one spec"):
            Campaign([])

    def test_summarize_groups_cells(self):
        specs = Grid(algorithm=["sgd", "asgd"], seed=[0, 1]).specs(tiny_factory)
        rows = Campaign(specs).run().summarize()
        cells = {(r["algorithm"], r["num_workers"]) for r in rows}
        assert cells == {("sgd", 1), ("asgd", 2)}
        assert all(r["runs"] == 2 for r in rows)


class TestExecutors:
    def test_make_executor_rule(self):
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, MultiprocessExecutor)
        assert pool.processes == 3

    def test_pool_matches_serial_results(self):
        specs = Grid(algorithm=["asgd", "lc-asgd"], seed=[0]).specs(tiny_factory)
        serial = Campaign(specs, executor=SerialExecutor()).run()
        pooled = Campaign(specs, executor=MultiprocessExecutor(processes=2)).run()
        assert [r.final_test_error for r in serial.results] == [
            r.final_test_error for r in pooled.results
        ]

    def test_pool_rejects_thread_backend(self):
        spec = ExperimentSpec(tiny_factory(), backend="thread")
        with pytest.raises(ValueError, match="only runs the 'sim' backend"):
            Campaign([spec], executor=MultiprocessExecutor(processes=2)).run()

    def test_pool_rejects_proc_backend(self):
        spec = ExperimentSpec(tiny_factory(), backend="proc")
        with pytest.raises(ValueError, match="only runs the 'sim' backend"):
            Campaign([spec], executor=MultiprocessExecutor(processes=2)).run()

    def test_pool_reports_starts_as_jobs_are_picked_up(self):
        # the old bulk submit fired every on_run_start before any run began;
        # with one process, job 1 must not claim to start before job 0 ends
        timeline = []

        class TimelineEvents(CampaignEvents):
            def on_run_start(self, spec, index, total):
                timeline.append(("start", index))

        specs = Grid(seed=[0, 1]).specs(tiny_factory)
        executor = MultiprocessExecutor(processes=1)
        jobs = list(enumerate(specs))
        for index, _spec, _result in executor.run(jobs, 2, TimelineEvents()):
            timeline.append(("end", index))
        assert timeline == [("start", 0), ("end", 0), ("start", 1), ("end", 1)]

    def test_pool_persists_results_in_parent_store(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = Grid(seed=[0, 1]).specs(tiny_factory)
        Campaign(specs, store=store, executor=MultiprocessExecutor(processes=2)).run()
        assert len(store) == 2
