"""One campaign grid mixing server and serverless algorithms, with resume."""

from pathlib import Path

from repro.core.config import TrainingConfig
from repro.experiments import Campaign, ResultStore, Sweep


def tiny_factory(**kwargs) -> TrainingConfig:
    kwargs.setdefault("max_updates", 4)
    kwargs.setdefault("epochs", 1)
    kwargs.setdefault("num_workers", 2)
    return TrainingConfig.tiny(**kwargs)


def mixed_grid():
    # topology only matters (and only expands) for the decentralized cells
    return Sweep("algorithm", ["asgd", "lc-asgd", "ad-psgd"]) * Sweep(
        "topology", ["ring", "bipartite"], when=lambda p: p["algorithm"] == "ad-psgd"
    )


def store_bytes(root: Path):
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def test_mixed_grid_runs_both_families_on_one_campaign(tmp_path):
    store = ResultStore(tmp_path)
    specs = mixed_grid().specs(tiny_factory)
    assert len(specs) == 4  # asgd, lc-asgd, ad-psgd x {ring, bipartite}

    report = Campaign(specs, store=store).run()
    assert len(report.executed) == 4

    by_algo = {}
    for result in report.results:
        by_algo.setdefault(result.algorithm, []).append(result)
    # server-based cells ran the parameter-server sim; decentralized cells
    # were dispatched to the gossip runtime and record their peer graph
    assert {r.backend for r in by_algo["asgd"]} == {"sim"}
    assert {r.backend for r in by_algo["lc-asgd"]} == {"sim"}
    assert {r.backend for r in by_algo["ad-psgd"]} == {"gossip"}
    assert {r.topology for r in by_algo["ad-psgd"]} == {"ring", "bipartite"}
    assert all(r.topology == "" for r in by_algo["asgd"] + by_algo["lc-asgd"])


def test_resume_leaves_store_byte_identical(tmp_path):
    store = ResultStore(tmp_path)
    specs = mixed_grid().specs(tiny_factory)
    Campaign(specs, store=store).run()
    before = store_bytes(tmp_path)
    assert before  # the store actually has files

    # resume over a fresh store handle: everything cached, nothing rewritten
    report = Campaign(specs, store=ResultStore(tmp_path)).run()
    assert len(report.cached) == 4
    assert len(report.executed) == 0
    assert store_bytes(tmp_path) == before
