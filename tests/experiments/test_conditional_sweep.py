"""Conditional sweep axes: per-axis guards and grid-level predicates."""

import pytest

from repro.core import TrainingConfig
from repro.experiments import Grid, Sweep


def test_guarded_axis_expands_only_where_relevant():
    grid = Sweep("algorithm", ["asgd", "lc-asgd"]) * Sweep(
        "lc_lambda", [0.3, 0.7], when=lambda p: p["algorithm"] == "lc-asgd"
    )
    points = grid.points()
    assert len(points) == 3  # 1 asgd + 2 lc-asgd, not 4
    asgd_points = [p for p in points if p["algorithm"] == "asgd"]
    assert asgd_points == [{"algorithm": "asgd"}]  # lambda never set
    lambdas = sorted(p["lc_lambda"] for p in points if p["algorithm"] == "lc-asgd")
    assert lambdas == [0.3, 0.7]
    assert len(grid) == 3


def test_guarded_axis_produces_no_redundant_specs():
    """The motivating case: lc_lambda is dead weight for asgd, so sweeping
    it must not mint asgd specs that differ only in an unread field."""
    grid = Sweep("algorithm", ["asgd", "lc-asgd"]) * Sweep(
        "lc_lambda", [0.3, 0.7], when=lambda p: p["algorithm"] == "lc-asgd"
    )
    specs = grid.specs(
        lambda **kw: TrainingConfig.tiny(num_workers=2, **kw)
    )
    keys = {spec.key() for spec in specs}
    assert len(specs) == 3 and len(keys) == 3
    # the unguarded grid builds 4 specs; the two asgd ones share a key only
    # after dedup — the guard avoids generating the duplicate at all
    unguarded = Sweep("algorithm", ["asgd", "lc-asgd"]) * Sweep("lc_lambda", [0.3, 0.7])
    assert len(unguarded.points()) == 4


def test_guard_sees_only_earlier_axes():
    seen = []

    def guard(point):
        seen.append(dict(point))
        return True

    grid = (
        Sweep("algorithm", ["asgd"])
        * Sweep("num_workers", [2, 4], when=guard)
        * Sweep("seed", [0, 1])
    )
    grid.points()
    assert all(set(p) == {"algorithm"} for p in seen)  # no num_workers/seed yet


def test_grid_level_when_filters_complete_points():
    grid = (Sweep("algorithm", ["sgd", "asgd"]) * Sweep("num_workers", [2, 16])).when(
        lambda p: not (p["algorithm"] == "sgd" and p["num_workers"] == 16)
    )
    points = grid.points()
    assert len(points) == 3
    assert {"algorithm": "sgd", "num_workers": 16} not in points
    assert len(grid) == 3


def test_when_predicates_stack_and_survive_multiplication():
    grid = Grid(a=[1, 2], b=[1, 2]).when(lambda p: p["a"] != 1).when(
        lambda p: p["b"] != 1
    )
    assert grid.points() == [{"a": 2, "b": 2}]
    widened = grid * Sweep("c", [7, 8])
    assert widened.points() == [{"a": 2, "b": 2, "c": 7}, {"a": 2, "b": 2, "c": 8}]


def test_point_order_stays_rightmost_fastest():
    grid = Grid(a=[1, 2], b=["x", "y"])
    assert grid.points() == [
        {"a": 1, "b": "x"},
        {"a": 1, "b": "y"},
        {"a": 2, "b": "x"},
        {"a": 2, "b": "y"},
    ]


def test_ungated_behavior_unchanged():
    grid = Sweep("algorithm", ["asgd", "lc-asgd"]) * Sweep("seed", [0, 1, 2])
    assert len(grid) == 6
    assert len(grid.points()) == 6
    assert dict(grid.axes) == {
        "algorithm": ("asgd", "lc-asgd"),
        "seed": (0, 1, 2),
    }
