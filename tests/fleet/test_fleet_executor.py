"""FleetExecutor + FleetAgent: scheduling, fault tolerance, store parity."""

import json
import socket
import threading
import time
import types

import pytest

from repro.core import TrainingConfig
from repro.experiments import Campaign, CampaignEvents, Grid, ResultStore, Sweep
from repro.experiments.spec import ExperimentSpec
from repro.fleet import FleetAgent, FleetError, FleetExecutor, protocol
from repro.runtime.wire import FrameConnection


def spirals_factory(**kw):
    kw.setdefault("algorithm", "asgd")
    kw.setdefault("num_workers", 2)
    kw.setdefault("epochs", 1)
    return TrainingConfig.spirals(**kw)


@pytest.fixture
def agents():
    started = [FleetAgent(port=0, slots=1).start(), FleetAgent(port=0, slots=1).start()]
    yield started
    for agent in started:
        agent.close()


class RecordingEvents(CampaignEvents):
    def __init__(self):
        self.starts, self.curve_points, self.ends, self.notes = [], [], [], []

    def on_run_start(self, spec, index, total):
        self.starts.append(index)

    def on_curve_point(self, spec, point):
        self.curve_points.append((spec.key(), point))

    def on_run_end(self, spec, result, cached, index, total):
        self.ends.append((index, cached))

    def on_note(self, message):
        self.notes.append(message)


# ---------------------------------------------------------------------- #
# the acceptance criterion: fleet == serial, byte for byte
# ---------------------------------------------------------------------- #
def test_fleet_store_summary_matches_serial_byte_for_byte(tmp_path, agents):
    """The same sweep through FleetExecutor (2 agents) and SerialExecutor
    must produce summary-equivalent ResultStores: the sim backend is
    deterministic, so shipping cells across sockets must change nothing
    the summary can see."""
    grid = Sweep("algorithm", ["sgd", "asgd"]) * Sweep("seed", [0, 1])
    specs = grid.specs(spirals_factory)

    serial_store = ResultStore(tmp_path / "serial")
    Campaign(specs, store=serial_store).run()

    fleet_store = ResultStore(tmp_path / "fleet")
    executor = FleetExecutor([a.address for a in agents])
    report = Campaign(specs, executor=executor, store=fleet_store).run()

    assert len(report.runs) == len(specs)
    assert fleet_store.keys() == serial_store.keys()
    serial_rows = json.dumps(serial_store.summarize(), sort_keys=True)
    fleet_rows = json.dumps(fleet_store.summarize(), sort_keys=True)
    assert fleet_rows == serial_rows


def test_fleet_streams_curve_points(agents):
    events = RecordingEvents()
    specs = Grid(seed=[0]).specs(spirals_factory)
    executor = FleetExecutor([agents[0].address])
    Campaign(specs, executor=executor, events=events).run()
    assert events.curve_points, "fleet runs must stream evaluation points"
    assert events.curve_points[0][0] == specs[0].key()


# ---------------------------------------------------------------------- #
# fault tolerance
# ---------------------------------------------------------------------- #
def test_agent_death_requeues_and_campaign_completes(tmp_path, agents):
    """Kill one agent mid-campaign: its in-flight cells requeue onto the
    survivor and every cell lands in the store exactly once."""
    store = ResultStore(tmp_path / "out")
    events = RecordingEvents()
    specs = Grid(seed=list(range(8))).specs(
        lambda **kw: spirals_factory(num_workers=4, epochs=8, **kw)
    )
    victim = agents[1]

    def kill_once_underway():
        deadline = time.monotonic() + 60.0
        while len(store) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        victim.kill()

    killer = threading.Thread(target=kill_once_underway, daemon=True)
    killer.start()
    executor = FleetExecutor([a.address for a in agents], heartbeat_timeout=8.0)
    report = Campaign(specs, executor=executor, store=store, events=events).run()
    killer.join(timeout=60.0)

    assert len(report.runs) == len(specs)
    assert len(store) == len(specs)  # every cell exactly once (keys are unique)
    assert sorted(store.keys()) == sorted(spec.key() for spec in specs)
    assert sorted(index for index, _ in events.ends) == list(range(len(specs)))
    assert any("died" in note for note in events.notes)


def test_all_agents_dead_raises_instead_of_hanging(tmp_path):
    agent = FleetAgent(port=0, slots=1).start()
    specs = Grid(seed=list(range(4))).specs(
        lambda **kw: spirals_factory(num_workers=4, epochs=8, **kw)
    )
    threading.Timer(0.3, agent.kill).start()
    executor = FleetExecutor([agent.address], heartbeat_timeout=5.0)
    with pytest.raises(FleetError, match="every fleet agent died"):
        Campaign(specs, executor=executor).run()


def test_deterministic_cell_failure_fails_fast_with_remote_traceback(agents):
    # an option ThreadBackend's constructor rejects: raises identically on
    # every agent, so the second attempt must end the campaign
    bad = ExperimentSpec(
        config=TrainingConfig.tiny(algorithm="asgd", num_workers=2, epochs=1),
        backend="thread",
        backend_options={"bogus_option": True},
    )
    executor = FleetExecutor([a.address for a in agents])
    with pytest.raises(FleetError, match="failed 2 time"):
        Campaign([bad], executor=executor).run()


def test_unreachable_agent_is_skipped_but_all_unreachable_raises(agents):
    # grab a port with no listener behind it
    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    dead_addr = placeholder.getsockname()
    placeholder.close()

    events = RecordingEvents()
    specs = Grid(seed=[0]).specs(spirals_factory)
    executor = FleetExecutor([dead_addr, agents[0].address], connect_timeout=2.0)
    report = Campaign(specs, executor=executor, events=events).run()
    assert len(report.runs) == 1
    assert any("unavailable" in note for note in events.notes)

    lonely = FleetExecutor([dead_addr], connect_timeout=2.0)
    with pytest.raises(FleetError, match="no fleet agents reachable"):
        Campaign(specs, executor=lonely).run()


def test_undecodable_result_faults_the_agent_not_the_campaign(agents):
    """A skewed agent whose result frame passes structural checks but whose
    payload won't rehydrate must be marked dead (its cell requeued onto a
    healthy agent), not crash the campaign with a raw KeyError."""

    def fake_agent(listener):
        sock, _ = listener.accept()
        conn = FrameConnection(sock)
        try:
            conn.recv()  # hello
            conn.send_control(protocol.welcome_frame(1, "skewed"))
            while True:
                kind, doc = protocol.parse_frame(conn.recv()[0])
                if kind == "job":
                    conn.send_control(
                        {
                            "ctl": "result",
                            "cv": protocol.FLEET_VERSION,
                            "body": {"id": doc["id"], "result": {"bogus": 1}},
                        }
                    )
        except Exception:
            pass
        finally:
            conn.close()

    listener = socket.create_server(("127.0.0.1", 0))
    threading.Thread(target=fake_agent, args=(listener,), daemon=True).start()
    try:
        events = RecordingEvents()
        specs = Grid(seed=[0]).specs(spirals_factory)
        executor = FleetExecutor([listener.getsockname()[:2], agents[0].address])
        report = Campaign(specs, executor=executor, events=events).run()
        assert len(report.runs) == 1  # the healthy agent finished the cell
        assert any("undecodable result" in note for note in events.notes)
    finally:
        listener.close()


def test_heartbeat_silence_marks_agent_dead():
    executor = FleetExecutor(["127.0.0.1:1"], heartbeat_timeout=3.0)
    stale = types.SimpleNamespace(alive=True, last_seen=time.monotonic() - 10.0)
    fresh = types.SimpleNamespace(alive=True, last_seen=time.monotonic())
    tombstones = []
    executor._check_heartbeats(
        [stale, fresh], lambda link, why: tombstones.append((link, why))
    )
    assert tombstones and tombstones[0][0] is stale
    assert "no heartbeat" in tombstones[0][1]
    assert len(tombstones) == 1


# ---------------------------------------------------------------------- #
# agent session behavior
# ---------------------------------------------------------------------- #
def test_second_scheduler_is_turned_away_busy():
    agent = FleetAgent(port=0, slots=1).start()
    try:
        first = FrameConnection(socket.create_connection(agent.address, timeout=5.0))
        first.send_control(protocol.hello_frame())
        kind, _ = protocol.parse_frame(first.recv()[0])
        assert kind == "welcome"

        with pytest.raises(FleetError, match="busy"):
            from repro.fleet.scheduler import AgentLink
            import queue

            AgentLink(*agent.address, events_out=queue.Queue(), connect_timeout=5.0)
        first.close()
        # after the first scheduler leaves, the agent serves again
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            second = FrameConnection(socket.create_connection(agent.address, timeout=5.0))
            second.send_control(protocol.hello_frame())
            kind, _ = protocol.parse_frame(second.recv()[0])
            second.close()
            if kind == "welcome":
                break
            time.sleep(0.05)
        assert kind == "welcome"
    finally:
        agent.close()


def test_silent_connection_cannot_wedge_the_agent():
    """A connection that never sends hello (port scan, dead scheduler host)
    must be abandoned after the silence window instead of holding the
    single-session lock forever."""
    agent = FleetAgent(port=0, slots=1, session_timeout=1.0).start()
    try:
        lurker = socket.create_connection(agent.address, timeout=5.0)
        # the lurker holds the session slot without ever speaking; a real
        # scheduler must get a welcome once the agent gives up on it
        deadline = time.monotonic() + 10.0
        kind = None
        while time.monotonic() < deadline:
            probe = FrameConnection(socket.create_connection(agent.address, timeout=5.0))
            probe.send_control(protocol.hello_frame())
            kind, _ = protocol.parse_frame(probe.recv()[0])
            probe.close()
            if kind == "welcome":
                break
            time.sleep(0.1)
        lurker.close()
        assert kind == "welcome"
    finally:
        agent.close()


def test_agent_survives_many_campaigns(agents):
    specs = Grid(seed=[0]).specs(spirals_factory)
    for _ in range(2):
        executor = FleetExecutor([agents[0].address])
        report = Campaign(specs, executor=executor).run()
        assert len(report.runs) == 1


def test_agent_validates_arguments():
    with pytest.raises(ValueError, match="slots"):
        FleetAgent(slots=0)
    with pytest.raises(ValueError, match="heartbeat"):
        FleetAgent(heartbeat_interval=0.0)
    with pytest.raises(ValueError, match="at least one agent"):
        FleetExecutor([])
    with pytest.raises(ValueError, match="positive"):
        FleetExecutor(["h:1"], heartbeat_timeout=0.0)


# ---------------------------------------------------------------------- #
# observability: trace frames ride the existing control plane
# ---------------------------------------------------------------------- #
def test_obs_campaign_ships_traces_over_trace_frames(agents):
    specs = Grid(seed=[0, 1]).specs(spirals_factory)
    events = RecordingEvents()
    executor = FleetExecutor([a.address for a in agents], obs=True)
    report = Campaign(specs, executor=executor, events=events).run()

    assert len(report.runs) == len(specs)
    # every cell ran with a live recorder on its agent...
    assert all(result.obs.get("enabled") for result in report.results)
    # ...and shipped its raw rows back before the result frame: the
    # campaign recorder holds staleness samples from both cells
    kinds = {}
    for record in executor.recorder.records():
        kinds[record.kind] = kinds.get(record.kind, 0) + 1
    expected = sum(result.staleness["count"] for result in report.results)
    assert kinds.get("staleness", 0) == expected


def test_obs_off_campaign_sends_no_trace_rows(agents):
    specs = Grid(seed=[0]).specs(spirals_factory)
    executor = FleetExecutor([agents[0].address])
    report = Campaign(specs, executor=executor).run()
    assert executor.recorder.rows() == []
    assert report.results[0].obs == {}
