"""Fleet frame vocabulary: builders, parser, spec/result round trips."""

import numpy as np
import pytest

from repro.core import TrainingConfig
from repro.core.metrics import CurvePoint, RunResult
from repro.experiments.spec import ExperimentSpec
from repro.fleet import protocol
from repro.fleet.protocol import FleetProtocolError


def make_spec(**overrides):
    return ExperimentSpec(
        config=TrainingConfig.tiny(algorithm="asgd", num_workers=2, **overrides),
        backend="sim",
        tags=("fleet", "t"),
    )


def make_result():
    return RunResult(
        algorithm="asgd",
        num_workers=2,
        bn_mode="async",
        curve=[CurvePoint(1, 0.5, 0.2, 0.9, 0.25, 1.0)],
        staleness={"mean": np.float64(1.5)},  # numpy scalars must survive
        total_updates=8,
        seed=3,
        backend="sim",
    )


class TestFrames:
    def test_hello_welcome_roundtrip(self):
        kind, doc = protocol.parse_frame(protocol.hello_frame())
        assert kind == "hello"
        kind, doc = protocol.parse_frame(protocol.welcome_frame(4, "h:1"))
        assert kind == "welcome" and doc["slots"] == 4

    def test_version_mismatch_rejected(self):
        bad = protocol.hello_frame()
        bad["cv"] = protocol.FLEET_VERSION + 1
        with pytest.raises(FleetProtocolError, match="protocol mismatch"):
            protocol.parse_frame(bad)

    def test_v1_frame_rejected(self):
        # the pre-ControlFrame schema: flat keys, "fleet" kind, v=1
        with pytest.raises(FleetProtocolError, match="not a fleet frame"):
            protocol.parse_frame({"fleet": "hello", "v": 1})

    def test_welcome_without_slots_rejected(self):
        with pytest.raises(FleetProtocolError, match="slots"):
            protocol.parse_frame(
                {"ctl": "welcome", "cv": protocol.FLEET_VERSION, "body": {"slots": 0}}
            )

    def test_junk_rejected(self):
        with pytest.raises(FleetProtocolError):
            protocol.parse_frame({"hello": 0})  # a proc handshake doc, not fleet
        with pytest.raises(FleetProtocolError, match="unknown fleet frame"):
            protocol.parse_frame({"ctl": "launch_missiles", "cv": protocol.FLEET_VERSION})
        with pytest.raises(FleetProtocolError, match="without 'id'"):
            protocol.parse_frame(
                {"ctl": "result", "cv": protocol.FLEET_VERSION, "body": {"result": {}}}
            )

    def test_job_spec_roundtrip_preserves_key_and_tags(self):
        spec = make_spec(seed=11)
        kind, doc = protocol.parse_frame(protocol.job_frame("7", spec))
        assert kind == "job"
        rebuilt = protocol.decode_spec(doc)
        assert rebuilt.key() == spec.key()
        assert rebuilt.tags == spec.tags
        # canonical (JSON) form matches even where tuples became lists
        assert rebuilt.config.to_dict() == spec.config.to_dict()

    def test_spec_key_mismatch_refused(self):
        doc = protocol.job_frame("1", make_spec())["body"]["spec"]
        doc["key"] = "0" * 16  # a skewed sender lying about identity
        with pytest.raises(ValueError, match="key mismatch"):
            ExperimentSpec.from_dict(doc)

    def test_result_roundtrip_through_json(self):
        import json

        result = make_result()
        frame = protocol.result_frame("3", result)
        payload = json.loads(json.dumps(frame))  # the wire is strict JSON
        kind, doc = protocol.parse_frame(payload)
        rebuilt = protocol.decode_result(doc)
        assert rebuilt.final_test_error == result.final_test_error
        assert rebuilt.staleness == {"mean": 1.5}
        assert rebuilt.total_updates == 8

    def test_curve_point_frame(self):
        point = CurvePoint(2, 1.0, 0.3, 0.8, 0.35, 0.9)
        kind, doc = protocol.parse_frame(protocol.curve_point_frame("5", point))
        assert kind == "curve_point"
        assert CurvePoint.from_dict(doc["point"]) == point

    def test_job_error_frame(self):
        kind, doc = protocol.parse_frame(
            protocol.job_error_frame("2", "ValueError('boom')", "tb...")
        )
        assert kind == "job_error"
        assert "boom" in doc["error"]


class TestAgentAddrs:
    def test_parses_roster(self):
        assert protocol.parse_agent_addrs("a:1, b:2 ,") == [("a", 1), ("b", 2)]

    def test_rejects_portless(self):
        with pytest.raises(ValueError, match="host:port"):
            protocol.parse_agent_addrs("justahost")

    def test_rejects_bad_port(self):
        with pytest.raises(ValueError, match="non-integer"):
            protocol.parse_agent_addrs("h:notaport")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no agent"):
            protocol.parse_agent_addrs(" , ")
